// Central fault-injection plane.
//
// The link layer already injects wire-level faults (cell loss, bit errors,
// skew — see link/link.h). Everything above the wire, however, can also
// misbehave in a real adaptor: firmware loops wedge, DMA transfers fail,
// descriptor words get corrupted in the dual-port RAM, interrupts get lost
// on the way to the host. The FaultPlane is a seeded registry of such
// faults that every layer consults through cheap hook points: a layer
// holds a `FaultPlane*` (null by default — hooks cost one pointer compare
// when fault injection is off) and asks `fires(point)` at the moment the
// corresponding hardware would fail.
//
// A fault can be probabilistic (fires with probability p at each
// consultation), deterministic (fires on the Nth consultation — "stall
// after N descriptors"), or both, and carries a budget bounding the total
// number of firings so schedules stay finite and runs always drain.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/rng.h"

namespace osiris::fault {

/// Hook points, one per injectable hardware failure.
enum class Point : int {
  kBoardRxStall = 0,  // receive firmware loop wedges (stops servicing cells)
  kBoardTxStall,      // transmit firmware loop wedges (stops servicing PDUs)
  kBoardRxCellDrop,   // cell discarded inside the SAR/reassembly loop
  kDmaError,          // a DMA transfer fails; no bytes move
  kDescCorrupt,       // a just-written descriptor word takes a bit flip
  kDpramStale,        // a dual-port-RAM read returns the word's old value
  kIrqLost,           // an asserted interrupt never reaches the host
  kIrqSpurious,       // the host observes an interrupt with no cause
  // Adversary / crash tenant behaviours (§3.2 hardening). These model a
  // misbehaving *application* on a kernel-bypass channel, not hardware:
  // arm them on a per-tenant FaultPlane handed to that tenant's Adc.
  kAdcGarbageDescriptor,  // app posts a forged transmit descriptor
  kAdcFreeListPoison,     // app corrupts a free-queue entry it recycles
  kAdcAppDeath,           // app dies mid-send (partial chain, no EOP)
  kAdcRefillStall,        // app stops returning receive buffers
  // Overload injectors (QoS / graceful-degradation experiments): drive
  // incast, oversubscription and bursty-adversary scenarios through the
  // same chaos plane as the hardware faults above.
  kRxBufferExhausted,  // a free-queue pop comes back empty despite supply
  kTenantBurst,        // app sends a back-to-back burst instead of one PDU
  kTxQueueWedge,       // a transmit queue is skipped for one scheduler pass
  kCount,
};

[[nodiscard]] constexpr const char* point_name(Point p) {
  switch (p) {
    case Point::kBoardRxStall: return "board_rx_stall";
    case Point::kBoardTxStall: return "board_tx_stall";
    case Point::kBoardRxCellDrop: return "board_rx_cell_drop";
    case Point::kDmaError: return "dma_error";
    case Point::kDescCorrupt: return "desc_corrupt";
    case Point::kDpramStale: return "dpram_stale";
    case Point::kIrqLost: return "irq_lost";
    case Point::kIrqSpurious: return "irq_spurious";
    case Point::kAdcGarbageDescriptor: return "adc_garbage_descriptor";
    case Point::kAdcFreeListPoison: return "adc_free_list_poison";
    case Point::kAdcAppDeath: return "adc_app_death";
    case Point::kAdcRefillStall: return "adc_refill_stall";
    case Point::kRxBufferExhausted: return "rx_buffer_exhausted";
    case Point::kTenantBurst: return "tenant_burst";
    case Point::kTxQueueWedge: return "tx_queue_wedge";
    case Point::kCount: break;
  }
  return "?";
}

namespace detail {
// Every Point below kCount must map to a real name: a new enumerator whose
// point_name case was forgotten would otherwise silently report "?" in
// summaries and trend tooling.
constexpr bool all_points_named() {
  for (int i = 0; i < static_cast<int>(Point::kCount); ++i) {
    const char* n = point_name(static_cast<Point>(i));
    if (n == nullptr || (n[0] == '?' && n[1] == '\0')) return false;
  }
  return true;
}
}  // namespace detail
static_assert(detail::all_points_named(),
              "point_name: add a case for every fault::Point up to kCount");

/// When an armed fault fires.
struct FaultSpec {
  double probability = 0.0;  // chance of firing at each consultation
  std::uint64_t after = 0;   // also fire on the Nth consultation (1-based; 0 = off)
  std::uint64_t budget = ~0ull;  // maximum total firings
};

class FaultPlane {
 public:
  explicit FaultPlane(std::uint64_t seed = 0xFA177) : rng_(seed) {}

  void arm(Point p, FaultSpec spec);
  void disarm(Point p);
  [[nodiscard]] bool armed(Point p) const { return slot(p).armed; }

  /// The hook: rolls the dice for `p`. Returns true when the fault fires
  /// at this consultation (and counts it against the budget).
  bool fires(Point p);

  /// Flips one uniformly chosen bit of `v` (descriptor corruption).
  std::uint32_t corrupt_word(std::uint32_t v);

  /// Uniform draw in [0, bound) from the plane's stream — for hooks that
  /// need to pick *which* word/bit to damage.
  std::uint64_t roll(std::uint64_t bound) { return rng_.below(bound); }

  // Per-point statistics.
  [[nodiscard]] std::uint64_t consulted(Point p) const { return slot(p).consulted; }
  [[nodiscard]] std::uint64_t fired(Point p) const { return slot(p).fired; }
  [[nodiscard]] std::uint64_t total_fired() const;

  /// One line per armed or fired point.
  [[nodiscard]] std::string summary() const;

 private:
  struct Slot {
    FaultSpec spec;
    bool armed = false;
    std::uint64_t consulted = 0;
    std::uint64_t fired = 0;
  };

  [[nodiscard]] Slot& slot(Point p) { return slots_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] const Slot& slot(Point p) const {
    return slots_[static_cast<std::size_t>(p)];
  }

  std::array<Slot, static_cast<std::size_t>(Point::kCount)> slots_{};
  sim::Rng rng_;
};

/// Null-safe hook for layers holding an optional plane pointer.
inline bool fires(FaultPlane* plane, Point p) {
  return plane != nullptr && plane->fires(p);
}

}  // namespace osiris::fault
