// Central fault-injection plane.
//
// The link layer already injects wire-level faults (cell loss, bit errors,
// skew — see link/link.h). Everything above the wire, however, can also
// misbehave in a real adaptor: firmware loops wedge, DMA transfers fail,
// descriptor words get corrupted in the dual-port RAM, interrupts get lost
// on the way to the host. The FaultPlane is a seeded registry of such
// faults that every layer consults through cheap hook points: a layer
// holds a `FaultPlane*` (null by default — hooks cost one pointer compare
// when fault injection is off) and asks `fires(point)` at the moment the
// corresponding hardware would fail.
//
// A fault can be probabilistic (fires with probability p at each
// consultation), deterministic (fires on the Nth consultation — "stall
// after N descriptors"), or both, and carries a budget bounding the total
// number of firings so schedules stay finite and runs always drain.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace osiris::fault {

/// Hook points, one per injectable hardware failure.
enum class Point : int {
  kBoardRxStall = 0,  // receive firmware loop wedges (stops servicing cells)
  kBoardTxStall,      // transmit firmware loop wedges (stops servicing PDUs)
  kBoardRxCellDrop,   // cell discarded inside the SAR/reassembly loop
  kDmaError,          // a DMA transfer fails; no bytes move
  kDescCorrupt,       // a just-written descriptor word takes a bit flip
  kDpramStale,        // a dual-port-RAM read returns the word's old value
  kIrqLost,           // an asserted interrupt never reaches the host
  kIrqSpurious,       // the host observes an interrupt with no cause
  // Adversary / crash tenant behaviours (§3.2 hardening). These model a
  // misbehaving *application* on a kernel-bypass channel, not hardware:
  // arm them on a per-tenant FaultPlane handed to that tenant's Adc.
  kAdcGarbageDescriptor,  // app posts a forged transmit descriptor
  kAdcFreeListPoison,     // app corrupts a free-queue entry it recycles
  kAdcAppDeath,           // app dies mid-send (partial chain, no EOP)
  kAdcRefillStall,        // app stops returning receive buffers
  // Overload injectors (QoS / graceful-degradation experiments): drive
  // incast, oversubscription and bursty-adversary scenarios through the
  // same chaos plane as the hardware faults above.
  kRxBufferExhausted,  // a free-queue pop comes back empty despite supply
  kTenantBurst,        // app sends a back-to-back burst instead of one PDU
  kTxQueueWedge,       // a transmit queue is skipped for one scheduler pass
  kCount,
};

[[nodiscard]] constexpr const char* point_name(Point p) {
  switch (p) {
    case Point::kBoardRxStall: return "board_rx_stall";
    case Point::kBoardTxStall: return "board_tx_stall";
    case Point::kBoardRxCellDrop: return "board_rx_cell_drop";
    case Point::kDmaError: return "dma_error";
    case Point::kDescCorrupt: return "desc_corrupt";
    case Point::kDpramStale: return "dpram_stale";
    case Point::kIrqLost: return "irq_lost";
    case Point::kIrqSpurious: return "irq_spurious";
    case Point::kAdcGarbageDescriptor: return "adc_garbage_descriptor";
    case Point::kAdcFreeListPoison: return "adc_free_list_poison";
    case Point::kAdcAppDeath: return "adc_app_death";
    case Point::kAdcRefillStall: return "adc_refill_stall";
    case Point::kRxBufferExhausted: return "rx_buffer_exhausted";
    case Point::kTenantBurst: return "tenant_burst";
    case Point::kTxQueueWedge: return "tx_queue_wedge";
    case Point::kCount: break;
  }
  return "?";
}

namespace detail {
// Every Point below kCount must map to a real name: a new enumerator whose
// point_name case was forgotten would otherwise silently report "?" in
// summaries and trend tooling.
constexpr bool all_points_named() {
  for (int i = 0; i < static_cast<int>(Point::kCount); ++i) {
    const char* n = point_name(static_cast<Point>(i));
    if (n == nullptr || (n[0] == '?' && n[1] == '\0')) return false;
  }
  return true;
}
}  // namespace detail
static_assert(detail::all_points_named(),
              "point_name: add a case for every fault::Point up to kCount");

/// When an armed fault fires.
struct FaultSpec {
  double probability = 0.0;  // chance of firing at each consultation
  std::uint64_t after = 0;   // also fire on the Nth consultation (1-based; 0 = off)
  std::uint64_t budget = ~0ull;  // maximum total firings
  // Consultation window: the spec is eligible to fire only on consultation
  // numbers n (1-based, counted since arm) with window_from <= n and, when
  // window_until != 0, n <= window_until. Outside the window the point
  // counts the consultation but never rolls the dice, so a chaos schedule
  // can align a fault with a traffic phase without changing its RNG draw
  // sequence inside the window. Zero in both fields = always eligible.
  std::uint64_t window_from = 0;
  std::uint64_t window_until = 0;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// One ledger entry per firing: which point fired, on which of its
/// consultations (1-based, since the arm() that made it fire).
struct Firing {
  Point point = Point::kCount;
  std::uint64_t consultation = 0;

  friend bool operator==(const Firing&, const Firing&) = default;
};

class FaultPlane {
 public:
  explicit FaultPlane(std::uint64_t seed = 0xFA177) : rng_(seed) {}

  /// Arms (or re-arms) `p`. Per-spec consulted/fired counters restart at
  /// zero — `after` and the consultation window are relative to this arm —
  /// but the lifetime counters and the firing ledger are preserved.
  void arm(Point p, FaultSpec spec);
  /// Clears the armed flag only: per-spec statistics, lifetime counters
  /// and the firing ledger all survive, so a scenario driver can disarm a
  /// point mid-run and still account for everything it did. Use
  /// reset_stats() for a clean slate between scenario phases.
  void disarm(Point p);
  [[nodiscard]] bool armed(Point p) const { return slot(p).armed; }
  [[nodiscard]] FaultSpec spec(Point p) const { return slot(p).spec; }

  /// The hook: rolls the dice for `p`. Returns true when the fault fires
  /// at this consultation (and counts it against the budget).
  bool fires(Point p);

  /// Flips one uniformly chosen bit of `v` (descriptor corruption).
  std::uint32_t corrupt_word(std::uint32_t v);

  /// Uniform draw in [0, bound) from the plane's stream — for hooks that
  /// need to pick *which* word/bit to damage.
  std::uint64_t roll(std::uint64_t bound) { return rng_.below(bound); }

  // Per-point statistics (relative to the last arm()).
  [[nodiscard]] std::uint64_t consulted(Point p) const { return slot(p).consulted; }
  [[nodiscard]] std::uint64_t fired(Point p) const { return slot(p).fired; }
  [[nodiscard]] std::uint64_t total_fired() const;

  // Lifetime statistics: monotone across arm()/disarm() cycles, cleared
  // only by reset_stats(). The *_cell accessors return stable addresses
  // (the plane's slot array never reallocates) for pull-model metrics
  // registration (obs::Registry::counter).
  [[nodiscard]] std::uint64_t lifetime_consulted(Point p) const {
    return slot(p).lifetime_consulted;
  }
  [[nodiscard]] std::uint64_t lifetime_fired(Point p) const {
    return slot(p).lifetime_fired;
  }
  [[nodiscard]] const std::uint64_t* lifetime_consulted_cell(Point p) const {
    return &slot(p).lifetime_consulted;
  }
  [[nodiscard]] const std::uint64_t* lifetime_fired_cell(Point p) const {
    return &slot(p).lifetime_fired;
  }

  /// Chronological record of every firing (bounded; see ledger_dropped()).
  /// arm() and disarm() leave it intact.
  [[nodiscard]] const std::vector<Firing>& ledger() const { return ledger_; }
  /// Firings not recorded because the ledger hit its cap.
  [[nodiscard]] std::uint64_t ledger_dropped() const { return ledger_dropped_; }

  /// Clears every statistic — per-spec and lifetime counters, the firing
  /// ledger — while leaving armed specs armed. This is the between-phases
  /// reset a scenario driver wants; note it restarts `after`/window
  /// consultation counting for armed points, exactly like a fresh arm().
  void reset_stats();

  /// Per-point armed state + statistics, for save()/restore() around an
  /// exploratory phase (lifetime counters and the ledger are observability
  /// and are deliberately NOT part of the state).
  struct PointState {
    FaultSpec spec;
    bool armed = false;
    std::uint64_t consulted = 0;
    std::uint64_t fired = 0;
  };
  using PlaneState = std::array<PointState, static_cast<std::size_t>(Point::kCount)>;
  [[nodiscard]] PlaneState save() const;
  void restore(const PlaneState& st);

  /// One line per armed or fired point.
  [[nodiscard]] std::string summary() const;

  static constexpr std::size_t kLedgerCap = 4096;

 private:
  struct Slot {
    FaultSpec spec;
    bool armed = false;
    std::uint64_t consulted = 0;
    std::uint64_t fired = 0;
    std::uint64_t lifetime_consulted = 0;
    std::uint64_t lifetime_fired = 0;
  };

  [[nodiscard]] Slot& slot(Point p) { return slots_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] const Slot& slot(Point p) const {
    return slots_[static_cast<std::size_t>(p)];
  }

  std::array<Slot, static_cast<std::size_t>(Point::kCount)> slots_{};
  std::vector<Firing> ledger_;
  std::uint64_t ledger_dropped_ = 0;
  sim::Rng rng_;
};

/// Null-safe hook for layers holding an optional plane pointer.
inline bool fires(FaultPlane* plane, Point p) {
  return plane != nullptr && plane->fires(p);
}

}  // namespace osiris::fault
