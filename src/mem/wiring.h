// Page wiring (pinning) bookkeeping — paper §2.4.
//
// Before a buffer's address is handed to the board for DMA, its pages must
// be wired (excluded from page replacement). The paper found Mach's
// standard wiring service surprisingly expensive because it also protects
// the page-table pages needed to translate the wired page; a low-level
// fast path avoids that. Both paths are modelled here; their costs live in
// the machine config, this class tracks counts and enforces correctness
// (DMA to an unwired page is a simulation error, caught by the board).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mem/paging.h"

namespace osiris::mem {

enum class WiringMode {
  kMachStandard,  // wires the page and its page-table pages (slow)
  kFastPath,      // low-level kernel interface (what the driver now uses)
};

class PageWiring {
 public:
  /// Wires the page frame containing `pa`. Nested wiring is counted.
  void wire(PhysAddr pa);

  /// Unwires one wiring of the frame containing `pa`.
  void unwire(PhysAddr pa);

  /// Wires every frame touched by the buffer list.
  void wire_buffers(const std::vector<PhysBuffer>& bufs);
  void unwire_buffers(const std::vector<PhysBuffer>& bufs);

  [[nodiscard]] bool is_wired(PhysAddr pa) const;

  /// Total wire operations performed (for cost accounting).
  [[nodiscard]] std::uint64_t wire_ops() const { return wire_ops_; }
  [[nodiscard]] std::uint64_t unwire_ops() const { return unwire_ops_; }

  /// Number of distinct frames currently wired.
  [[nodiscard]] std::size_t wired_frames() const { return counts_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> counts_;  // frame -> depth
  std::uint64_t wire_ops_ = 0;
  std::uint64_t unwire_ops_ = 0;
};

}  // namespace osiris::mem
