#include "mem/paging.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/rng.h"

namespace osiris::mem {

FrameAllocator::FrameAllocator(std::size_t mem_bytes, bool interleave,
                               std::uint64_t seed)
    : total_frames_(mem_bytes / kPageSize),
      allocated_(total_frames_, false) {
  std::vector<std::uint32_t> order(total_frames_);
  for (std::size_t i = 0; i < total_frames_; ++i) order[i] = static_cast<std::uint32_t>(i);
  if (interleave) {
    // Fisher-Yates with the deterministic sim RNG: models the arbitrary
    // frame ordering of a long-running system's free list.
    sim::Rng rng(seed);
    for (std::size_t i = total_frames_; i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
  }
  free_.assign(order.begin(), order.end());
}

PhysAddr FrameAllocator::alloc() {
  if (free_.empty()) throw std::runtime_error("FrameAllocator: out of frames");
  const std::uint32_t frame = free_.front();
  free_.pop_front();
  allocated_[frame] = true;
  return frame * kPageSize;
}

std::optional<PhysAddr> FrameAllocator::alloc_contiguous(std::uint32_t n) {
  if (n == 0) return std::nullopt;
  if (n == 1) return alloc();
  // Best-effort scan for a run of n free frames (the paper's proposed OS
  // support is explicitly best-effort).
  std::uint32_t run = 0;
  for (std::uint32_t f = 0; f < total_frames_; ++f) {
    run = allocated_[f] ? 0 : run + 1;
    if (run == n) {
      const std::uint32_t first = f + 1 - n;
      for (std::uint32_t g = first; g <= f; ++g) {
        allocated_[g] = true;
        free_.erase(std::find(free_.begin(), free_.end(), g));
      }
      return first * kPageSize;
    }
  }
  return std::nullopt;
}

void FrameAllocator::free(PhysAddr frame_base) {
  const std::uint32_t frame = frame_base / kPageSize;
  if (frame >= total_frames_ || !allocated_[frame]) {
    throw std::logic_error("FrameAllocator: bad free");
  }
  allocated_[frame] = false;
  free_.push_back(frame);
}

AddressSpace::AddressSpace(PhysicalMemory& pm, FrameAllocator& fa, std::string name)
    : pm_(&pm), fa_(&fa), name_(std::move(name)) {}

AddressSpace::~AddressSpace() {
  for (const PhysAddr f : owned_frames_) fa_->free(f);
}

VirtAddr AddressSpace::map_pages_at_cursor(const std::vector<PhysAddr>& frames,
                                           std::uint32_t offset_in_page,
                                           std::uint32_t len) {
  const std::uint32_t first_vpage = next_vpage_;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    table_[first_vpage + static_cast<std::uint32_t>(i)] = frames[i];
  }
  next_vpage_ += static_cast<std::uint32_t>(frames.size());
  (void)len;
  return (first_vpage << kPageShift) + offset_in_page;
}

VirtAddr AddressSpace::alloc(std::uint32_t len, std::uint32_t offset_in_page) {
  if (len == 0) throw std::invalid_argument("AddressSpace::alloc: zero length");
  if (offset_in_page >= kPageSize) {
    throw std::invalid_argument("AddressSpace::alloc: offset >= page size");
  }
  const std::uint32_t npages = (offset_in_page + len + kPageSize - 1) / kPageSize;
  std::vector<PhysAddr> frames;
  frames.reserve(npages);
  for (std::uint32_t i = 0; i < npages; ++i) {
    const PhysAddr f = fa_->alloc();
    frames.push_back(f);
    owned_frames_.push_back(f);
  }
  return map_pages_at_cursor(frames, offset_in_page, len);
}

VirtAddr AddressSpace::alloc_prefer_contiguous(std::uint32_t len, bool* contiguous) {
  const std::uint32_t npages = (len + kPageSize - 1) / kPageSize;
  if (auto base = fa_->alloc_contiguous(npages)) {
    std::vector<PhysAddr> frames(npages);
    for (std::uint32_t i = 0; i < npages; ++i) {
      frames[i] = *base + i * kPageSize;
      owned_frames_.push_back(frames[i]);
    }
    if (contiguous != nullptr) *contiguous = true;
    return map_pages_at_cursor(frames, 0, len);
  }
  if (contiguous != nullptr) *contiguous = false;
  return alloc(len);
}

VirtAddr AddressSpace::map_frame(PhysAddr frame_base) {
  if (page_offset(frame_base) != 0) {
    throw std::invalid_argument("AddressSpace::map_frame: not page aligned");
  }
  const std::uint32_t vpage = next_vpage_++;
  table_[vpage] = frame_base;
  return vpage << kPageShift;
}

void AddressSpace::unmap_page(VirtAddr va) {
  if (table_.erase(page_of(va)) == 0) {
    throw std::logic_error("AddressSpace::unmap_page: not mapped");
  }
}

PhysAddr AddressSpace::translate(VirtAddr va) const {
  const auto it = table_.find(page_of(va));
  if (it == table_.end()) {
    throw std::out_of_range("AddressSpace(" + name_ + "): unmapped va " +
                            std::to_string(va));
  }
  return it->second + page_offset(va);
}

bool AddressSpace::mapped(VirtAddr va) const {
  return table_.contains(page_of(va));
}

std::vector<PhysBuffer> AddressSpace::scatter(VirtAddr va, std::uint32_t len) const {
  std::vector<PhysBuffer> out;
  std::uint32_t remaining = len;
  VirtAddr cur = va;
  while (remaining > 0) {
    const std::uint32_t in_page = std::min(remaining, kPageSize - page_offset(cur));
    const PhysAddr pa = translate(cur);
    if (!out.empty() && out.back().addr + out.back().len == pa) {
      out.back().len += in_page;  // physically contiguous with previous run
    } else {
      out.push_back({pa, in_page});
    }
    cur += in_page;
    remaining -= in_page;
  }
  return out;
}

void AddressSpace::write(VirtAddr va, std::span<const std::uint8_t> src) {
  std::size_t done = 0;
  for (const PhysBuffer& pb : scatter(va, static_cast<std::uint32_t>(src.size()))) {
    pm_->write(pb.addr, src.subspan(done, pb.len));
    done += pb.len;
  }
}

void AddressSpace::read(VirtAddr va, std::span<std::uint8_t> dst) const {
  std::size_t done = 0;
  for (const PhysBuffer& pb : scatter(va, static_cast<std::uint32_t>(dst.size()))) {
    pm_->read(pb.addr, dst.subspan(done, pb.len));
    done += pb.len;
  }
}

}  // namespace osiris::mem
