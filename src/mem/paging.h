// Page-based virtual memory: frame allocator, address spaces, scatter lists.
//
// The paper's §2.2 problem — contiguous virtual pages are generally NOT
// contiguous in physical memory, so a PDU fragments into many physical
// buffers — only manifests if the frame allocator actually hands out
// non-adjacent frames. The allocator therefore interleaves its free list by
// default (modelling a long-running system's fragmented memory) and offers
// best-effort contiguous allocation as the paper's proposed mitigation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/phys.h"

namespace osiris::mem {

using VirtAddr = std::uint32_t;

constexpr std::uint32_t kPageSize = 4096;  // paper's example page size
constexpr std::uint32_t kPageShift = 12;

constexpr std::uint32_t page_of(std::uint32_t addr) { return addr >> kPageShift; }
constexpr std::uint32_t page_offset(std::uint32_t addr) { return addr & (kPageSize - 1); }
constexpr std::uint32_t page_base(std::uint32_t addr) { return addr & ~(kPageSize - 1); }

/// Allocates physical page frames from a shared pool.
class FrameAllocator {
 public:
  /// `interleave`: if true (default), the free list is shuffled so that
  /// successive allocations are physically discontiguous, as on a
  /// long-running host. If false, frames come out in ascending order.
  FrameAllocator(std::size_t mem_bytes, bool interleave = true,
                 std::uint64_t seed = 1);

  /// Allocates one frame; returns its physical base address.
  PhysAddr alloc();

  /// Best-effort allocation of `n` physically contiguous frames (§2.2's
  /// proposed OS support). Returns base address or nullopt.
  std::optional<PhysAddr> alloc_contiguous(std::uint32_t n);

  void free(PhysAddr frame_base);

  [[nodiscard]] std::size_t free_frames() const { return free_.size(); }
  [[nodiscard]] std::size_t total_frames() const { return total_frames_; }

 private:
  std::size_t total_frames_;
  std::deque<std::uint32_t> free_;            // frame numbers
  std::vector<bool> allocated_;               // by frame number
};

/// A protection domain's virtual address space: a page table mapping
/// virtual pages to physical frames.
class AddressSpace {
 public:
  AddressSpace(PhysicalMemory& pm, FrameAllocator& fa, std::string name);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  /// Allocates `len` bytes of virtually contiguous memory starting at a
  /// page boundary plus `offset_in_page` (non-zero models unaligned
  /// application buffers). Returns the virtual address of the first byte.
  VirtAddr alloc(std::uint32_t len, std::uint32_t offset_in_page = 0);

  /// Like alloc(), but asks the frame allocator for physically contiguous
  /// frames; falls back to ordinary allocation when unavailable. Sets
  /// `*contiguous` to whether the fast path succeeded, if non-null.
  VirtAddr alloc_prefer_contiguous(std::uint32_t len, bool* contiguous = nullptr);

  /// Maps an existing physical frame at the next free virtual page (used
  /// by fbufs to share a frame across domains). Returns the virtual base.
  VirtAddr map_frame(PhysAddr frame_base);

  /// Removes the mapping of the virtual page containing `va`. The frame is
  /// not freed (caller owns it).
  void unmap_page(VirtAddr va);

  /// Translates a virtual address. Throws if unmapped.
  [[nodiscard]] PhysAddr translate(VirtAddr va) const;

  [[nodiscard]] bool mapped(VirtAddr va) const;

  /// Produces the physical buffer list for [va, va+len): one entry per run
  /// of physically contiguous bytes. This is exactly what the driver hands
  /// to the board (paper §2.2, Figure 1).
  [[nodiscard]] std::vector<PhysBuffer> scatter(VirtAddr va, std::uint32_t len) const;

  // Data access through the page table (no cache model; see CachedView for
  // cost-accounted CPU access).
  void write(VirtAddr va, std::span<const std::uint8_t> src);
  void read(VirtAddr va, std::span<std::uint8_t> dst) const;

  [[nodiscard]] PhysicalMemory& physical() { return *pm_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  VirtAddr map_pages_at_cursor(const std::vector<PhysAddr>& frames,
                               std::uint32_t offset_in_page,
                               std::uint32_t len);

  PhysicalMemory* pm_;
  FrameAllocator* fa_;
  std::string name_;
  std::unordered_map<std::uint32_t, PhysAddr> table_;  // vpage -> frame base
  std::uint32_t next_vpage_ = 1;  // page 0 kept unmapped (null page)
  std::vector<PhysAddr> owned_frames_;
};

}  // namespace osiris::mem
