#include "mem/wiring.h"

#include <stdexcept>

namespace osiris::mem {

void PageWiring::wire(PhysAddr pa) {
  ++counts_[page_of(pa)];
  ++wire_ops_;
}

void PageWiring::unwire(PhysAddr pa) {
  const auto it = counts_.find(page_of(pa));
  if (it == counts_.end()) throw std::logic_error("PageWiring: unwire of unwired page");
  if (--it->second == 0) counts_.erase(it);
  ++unwire_ops_;
}

void PageWiring::wire_buffers(const std::vector<PhysBuffer>& bufs) {
  for (const auto& b : bufs) {
    for (std::uint32_t p = page_of(b.addr); p <= page_of(b.addr + b.len - 1); ++p) {
      wire(p << kPageShift);
    }
  }
}

void PageWiring::unwire_buffers(const std::vector<PhysBuffer>& bufs) {
  for (const auto& b : bufs) {
    for (std::uint32_t p = page_of(b.addr); p <= page_of(b.addr + b.len - 1); ++p) {
      unwire(p << kPageShift);
    }
  }
}

bool PageWiring::is_wired(PhysAddr pa) const {
  return counts_.contains(page_of(pa));
}

}  // namespace osiris::mem
