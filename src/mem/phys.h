// Simulated host physical memory.
//
// A flat byte array addressed by 32-bit physical addresses. All network
// payload in the simulation is real data stored here: DMA engines copy
// bytes in and out of this array, protocol checksums are computed over it,
// and tests verify end-to-end integrity through it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace osiris::mem {

using PhysAddr = std::uint32_t;

/// A contiguous run of physical memory: the unit of data exchanged between
/// the host driver and the on-board processors (paper §2.2).
struct PhysBuffer {
  PhysAddr addr = 0;
  std::uint32_t len = 0;

  friend bool operator==(const PhysBuffer&, const PhysBuffer&) = default;
};

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::size_t bytes) : data_(bytes, 0) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Reads `dst.size()` bytes starting at `addr`. Bounds-checked.
  void read(PhysAddr addr, std::span<std::uint8_t> dst) const;

  /// Writes `src` starting at `addr`. Bounds-checked.
  void write(PhysAddr addr, std::span<const std::uint8_t> src);

  [[nodiscard]] std::uint8_t byte(PhysAddr addr) const;
  void set_byte(PhysAddr addr, std::uint8_t v);

  /// Direct view for the cache model and DMA engines (bounds-checked).
  [[nodiscard]] std::span<const std::uint8_t> view(PhysAddr addr, std::size_t len) const;
  [[nodiscard]] std::span<std::uint8_t> view_mut(PhysAddr addr, std::size_t len);

 private:
  void check(PhysAddr addr, std::size_t len) const;

  std::vector<std::uint8_t> data_;
};

}  // namespace osiris::mem
