// Simulated host physical memory.
//
// A flat byte array addressed by 32-bit physical addresses. All network
// payload in the simulation is real data stored here: DMA engines copy
// bytes in and out of this array, protocol checksums are computed over it,
// and tests verify end-to-end integrity through it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.h"

namespace osiris::mem {

using PhysAddr = std::uint32_t;

/// A contiguous run of physical memory: the unit of data exchanged between
/// the host driver and the on-board processors (paper §2.2).
struct PhysBuffer {
  PhysAddr addr = 0;
  std::uint32_t len = 0;

  friend bool operator==(const PhysBuffer&, const PhysBuffer&) = default;
};

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::size_t bytes) : data_(bytes, 0) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Reads `dst.size()` bytes starting at `addr`. Bounds-checked.
  void read(PhysAddr addr, std::span<std::uint8_t> dst) const;

  /// Writes `src` starting at `addr`. Bounds-checked.
  void write(PhysAddr addr, std::span<const std::uint8_t> src);

  [[nodiscard]] std::uint8_t byte(PhysAddr addr) const;
  void set_byte(PhysAddr addr, std::uint8_t v);

  /// Enables fault injection on the DMA entry points (not owned).
  void set_fault_plane(fault::FaultPlane* plane) { faults_ = plane; }

  /// DMA-engine entry points. Unlike read()/write(), a transfer that falls
  /// outside physical memory — e.g. the address came from a corrupted
  /// descriptor — or an injected fault::Point::kDmaError does not throw:
  /// the transfer is abandoned, no bytes move, and false is returned (the
  /// controller's error bit; the firmware presses on regardless).
  bool dma_read(PhysAddr addr, std::span<std::uint8_t> dst);
  bool dma_write(PhysAddr addr, std::span<const std::uint8_t> src);

  /// memmove-style phys→phys transfer: overlap-safe, same DMA error
  /// semantics as dma_read/dma_write (one fault-plane consultation).
  bool dma_move(PhysAddr dst, PhysAddr src, std::size_t len);

  /// Scatter/gather transfers used by the DMA engines. Each segment is an
  /// independent DMA burst: faults are consulted and errors counted per
  /// segment, exactly as if the caller had issued one dma_read/dma_write
  /// per buffer. A failed gather segment leaves its slice of `dst`
  /// zero-filled; a failed scatter segment moves no bytes. Returns the
  /// number of segments that transferred. Throws only on a dst/src span
  /// shorter than the segment list's total length.
  std::size_t dma_gather(std::span<const PhysBuffer> segs,
                         std::span<std::uint8_t> dst);
  std::size_t dma_scatter(std::span<const PhysBuffer> segs,
                          std::span<const std::uint8_t> src);

  [[nodiscard]] std::uint64_t dma_errors() const { return dma_errors_; }

  /// Direct view for the cache model and DMA engines (bounds-checked).
  [[nodiscard]] std::span<const std::uint8_t> view(PhysAddr addr, std::size_t len) const;
  [[nodiscard]] std::span<std::uint8_t> view_mut(PhysAddr addr, std::size_t len);

 private:
  void check(PhysAddr addr, std::size_t len) const;
  bool dma_ok(PhysAddr addr, std::size_t len);

  std::vector<std::uint8_t> data_;
  fault::FaultPlane* faults_ = nullptr;
  std::uint64_t dma_errors_ = 0;
};

}  // namespace osiris::mem
