// Direct-mapped write-through data cache model.
//
// Models the DECstation 5000/200's 64 KB direct-mapped data cache, which is
// NOT coherent with DMA: a DMA transfer into main memory leaves any cached
// copies stale, and a later CPU read returns the stale bytes (paper §2.3).
// The DEC 3000/600's cache, by contrast, is updated during DMA writes.
//
// The cache stores real data. Staleness is therefore real: a CPU read
// through this model after a non-coherent DMA write returns the old bytes,
// UDP checksums over them actually fail, and the lazy-invalidation recovery
// path in the driver is genuinely exercised.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mem/phys.h"

namespace osiris::mem {

/// What a DMA write does to matching cache lines.
enum class DmaCoherence {
  kNonCoherent,  // DECstation 5000/200: cached copies go stale
  kUpdate,       // DEC 3000/600: DMA writes update the cache
};

struct CacheConfig {
  std::uint32_t size_bytes = 64 * 1024;  // 5000/200 D-cache
  std::uint32_t line_bytes = 16;
  DmaCoherence coherence = DmaCoherence::kNonCoherent;
};

/// Cost of a sequence of CPU accesses, in cache events. The machine model
/// converts these to time (hit cycles, miss penalty, memory words moved
/// across the bus).
struct AccessCost {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t mem_words = 0;  // 32-bit words moved to/from main memory

  AccessCost& operator+=(const AccessCost& o) {
    hits += o.hits;
    misses += o.misses;
    mem_words += o.mem_words;
    return *this;
  }
};

class DataCache {
 public:
  DataCache(PhysicalMemory& pm, CacheConfig cfg);

  /// CPU read of [addr, addr+dst.size()): returns cached bytes where lines
  /// hit (possibly stale), fills lines from memory on miss.
  AccessCost cpu_read(PhysAddr addr, std::span<std::uint8_t> dst);

  /// CPU write (write-through, no-allocate): updates memory, and updates a
  /// line only if it already hits.
  AccessCost cpu_write(PhysAddr addr, std::span<const std::uint8_t> src);

  /// DMA write into main memory. Under kNonCoherent, matching lines are
  /// left holding the old data (stale); under kUpdate they are refreshed.
  /// Returns false when the transfer failed (bad address from a corrupted
  /// descriptor, or an injected DMA error) — no bytes move.
  bool dma_write(PhysAddr addr, std::span<const std::uint8_t> src);

  /// Scatter form of dma_write(): each segment is an independent DMA burst
  /// taking `src` bytes in order, with per-segment fault/error semantics
  /// (see PhysicalMemory::dma_scatter) and the same per-segment cache
  /// coherence effects as dma_write(). Returns the number of segments that
  /// transferred.
  std::size_t dma_scatter(std::span<const PhysBuffer> segs,
                          std::span<const std::uint8_t> src);

  /// Invalidates all lines overlapping [addr, addr+len). Returns the number
  /// of 32-bit words in the range (cost: ~1 CPU cycle/word, paper §2.3).
  std::uint64_t invalidate(PhysAddr addr, std::uint32_t len);

  /// Invalidates the whole cache (the DECstation's cache-swap trick; cheap
  /// itself but causes subsequent misses).
  void invalidate_all();

  /// True if any line overlapping the range holds data that differs from
  /// main memory (i.e. a CPU read would return stale bytes).
  [[nodiscard]] bool is_stale(PhysAddr addr, std::uint32_t len) const;

  // Statistics.
  [[nodiscard]] std::uint64_t stale_reads() const { return stale_reads_; }
  [[nodiscard]] std::uint64_t dma_stale_lines() const { return dma_stale_lines_; }
  [[nodiscard]] std::uint64_t lines() const { return static_cast<std::uint64_t>(lines_.size()); }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

 private:
  struct Line {
    bool valid = false;
    std::uint32_t tag = 0;
    std::vector<std::uint8_t> data;
  };

  [[nodiscard]] std::uint32_t index_of(PhysAddr addr) const {
    return (addr / cfg_.line_bytes) % static_cast<std::uint32_t>(lines_.size());
  }
  [[nodiscard]] std::uint32_t tag_of(PhysAddr addr) const {
    return addr / cfg_.line_bytes / static_cast<std::uint32_t>(lines_.size());
  }

  PhysicalMemory* pm_;
  CacheConfig cfg_;
  std::vector<Line> lines_;
  std::uint64_t stale_reads_ = 0;      // CPU reads that returned stale bytes
  std::uint64_t dma_stale_lines_ = 0;  // lines made stale by DMA writes
};

}  // namespace osiris::mem
