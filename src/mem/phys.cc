#include "mem/phys.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace osiris::mem {

void PhysicalMemory::check(PhysAddr addr, std::size_t len) const {
  if (static_cast<std::size_t>(addr) + len > data_.size()) {
    throw std::out_of_range("PhysicalMemory: access [" + std::to_string(addr) +
                            ", +" + std::to_string(len) + ") beyond " +
                            std::to_string(data_.size()));
  }
}

void PhysicalMemory::read(PhysAddr addr, std::span<std::uint8_t> dst) const {
  check(addr, dst.size());
  std::copy_n(data_.begin() + addr, dst.size(), dst.begin());
}

void PhysicalMemory::write(PhysAddr addr, std::span<const std::uint8_t> src) {
  check(addr, src.size());
  std::copy(src.begin(), src.end(), data_.begin() + addr);
}

std::uint8_t PhysicalMemory::byte(PhysAddr addr) const {
  check(addr, 1);
  return data_[addr];
}

void PhysicalMemory::set_byte(PhysAddr addr, std::uint8_t v) {
  check(addr, 1);
  data_[addr] = v;
}

bool PhysicalMemory::dma_ok(PhysAddr addr, std::size_t len) {
  if (static_cast<std::size_t>(addr) + len > data_.size() ||
      fault::fires(faults_, fault::Point::kDmaError)) {
    ++dma_errors_;
    return false;
  }
  return true;
}

bool PhysicalMemory::dma_read(PhysAddr addr, std::span<std::uint8_t> dst) {
  if (!dma_ok(addr, dst.size())) return false;
  std::copy_n(data_.begin() + addr, dst.size(), dst.begin());
  return true;
}

bool PhysicalMemory::dma_write(PhysAddr addr, std::span<const std::uint8_t> src) {
  if (!dma_ok(addr, src.size())) return false;
  std::copy(src.begin(), src.end(), data_.begin() + addr);
  return true;
}

std::span<const std::uint8_t> PhysicalMemory::view(PhysAddr addr, std::size_t len) const {
  check(addr, len);
  return {data_.data() + addr, len};
}

std::span<std::uint8_t> PhysicalMemory::view_mut(PhysAddr addr, std::size_t len) {
  check(addr, len);
  return {data_.data() + addr, len};
}

}  // namespace osiris::mem
