#include "mem/phys.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace osiris::mem {

void PhysicalMemory::check(PhysAddr addr, std::size_t len) const {
  if (static_cast<std::size_t>(addr) + len > data_.size()) {
    throw std::out_of_range("PhysicalMemory: access [" + std::to_string(addr) +
                            ", +" + std::to_string(len) + ") beyond " +
                            std::to_string(data_.size()));
  }
}

void PhysicalMemory::read(PhysAddr addr, std::span<std::uint8_t> dst) const {
  check(addr, dst.size());
  std::copy_n(data_.begin() + addr, dst.size(), dst.begin());
}

void PhysicalMemory::write(PhysAddr addr, std::span<const std::uint8_t> src) {
  check(addr, src.size());
  std::copy(src.begin(), src.end(), data_.begin() + addr);
}

std::uint8_t PhysicalMemory::byte(PhysAddr addr) const {
  check(addr, 1);
  return data_[addr];
}

void PhysicalMemory::set_byte(PhysAddr addr, std::uint8_t v) {
  check(addr, 1);
  data_[addr] = v;
}

bool PhysicalMemory::dma_ok(PhysAddr addr, std::size_t len) {
  if (static_cast<std::size_t>(addr) + len > data_.size() ||
      fault::fires(faults_, fault::Point::kDmaError)) {
    ++dma_errors_;
    return false;
  }
  return true;
}

bool PhysicalMemory::dma_read(PhysAddr addr, std::span<std::uint8_t> dst) {
  if (!dma_ok(addr, dst.size())) return false;
  std::copy_n(data_.begin() + addr, dst.size(), dst.begin());
  return true;
}

bool PhysicalMemory::dma_write(PhysAddr addr, std::span<const std::uint8_t> src) {
  if (!dma_ok(addr, src.size())) return false;
  std::copy(src.begin(), src.end(), data_.begin() + addr);
  return true;
}

bool PhysicalMemory::dma_move(PhysAddr dst, PhysAddr src, std::size_t len) {
  // One transfer, one fault consultation — but both windows must be in
  // range for the move to start.
  if (static_cast<std::size_t>(src) + len > data_.size()) {
    ++dma_errors_;
    return false;
  }
  if (!dma_ok(dst, len)) return false;
  std::memmove(data_.data() + dst, data_.data() + src, len);
  return true;
}

std::size_t PhysicalMemory::dma_gather(std::span<const PhysBuffer> segs,
                                       std::span<std::uint8_t> dst) {
  std::size_t total = 0;
  for (const auto& s : segs) total += s.len;
  if (dst.size() < total) {
    throw std::out_of_range("PhysicalMemory::dma_gather: dst span too short");
  }
  std::size_t off = 0;
  std::size_t ok = 0;
  for (const auto& s : segs) {
    if (dma_read(s.addr, dst.subspan(off, s.len))) {
      ++ok;
    } else {
      std::fill_n(dst.begin() + static_cast<std::ptrdiff_t>(off), s.len, 0);
    }
    off += s.len;
  }
  return ok;
}

std::size_t PhysicalMemory::dma_scatter(std::span<const PhysBuffer> segs,
                                        std::span<const std::uint8_t> src) {
  std::size_t total = 0;
  for (const auto& s : segs) total += s.len;
  if (src.size() < total) {
    throw std::out_of_range("PhysicalMemory::dma_scatter: src span too short");
  }
  std::size_t off = 0;
  std::size_t ok = 0;
  for (const auto& s : segs) {
    if (dma_write(s.addr, src.subspan(off, s.len))) ++ok;
    off += s.len;
  }
  return ok;
}

std::span<const std::uint8_t> PhysicalMemory::view(PhysAddr addr, std::size_t len) const {
  check(addr, len);
  return {data_.data() + addr, len};
}

std::span<std::uint8_t> PhysicalMemory::view_mut(PhysAddr addr, std::size_t len) {
  check(addr, len);
  return {data_.data() + addr, len};
}

}  // namespace osiris::mem
