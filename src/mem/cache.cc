#include "mem/cache.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace osiris::mem {

DataCache::DataCache(PhysicalMemory& pm, CacheConfig cfg) : pm_(&pm), cfg_(cfg) {
  if (cfg_.size_bytes % cfg_.line_bytes != 0) {
    throw std::invalid_argument("DataCache: size not a multiple of line size");
  }
  lines_.resize(cfg_.size_bytes / cfg_.line_bytes);
  for (auto& l : lines_) l.data.resize(cfg_.line_bytes);
}

AccessCost DataCache::cpu_read(PhysAddr addr, std::span<std::uint8_t> dst) {
  AccessCost cost;
  std::size_t done = 0;
  while (done < dst.size()) {
    const PhysAddr a = addr + static_cast<PhysAddr>(done);
    const PhysAddr line_base = a - (a % cfg_.line_bytes);
    const std::uint32_t off = a - line_base;
    const std::uint32_t n = std::min<std::uint32_t>(
        cfg_.line_bytes - off, static_cast<std::uint32_t>(dst.size() - done));
    Line& line = lines_[index_of(a)];
    const std::uint32_t tag = tag_of(a);
    if (line.valid && line.tag == tag) {
      ++cost.hits;
      // Possibly stale: compare with memory for statistics only; the data
      // we return is the cached copy, as the real hardware would.
      const auto truth = pm_->view(line_base, cfg_.line_bytes);
      if (!std::equal(line.data.begin(), line.data.end(), truth.begin())) {
        ++stale_reads_;
      }
    } else {
      ++cost.misses;
      cost.mem_words += cfg_.line_bytes / 4;
      line.valid = true;
      line.tag = tag;
      pm_->read(line_base, line.data);
    }
    std::copy_n(line.data.begin() + off, n, dst.begin() + done);
    done += n;
  }
  return cost;
}

AccessCost DataCache::cpu_write(PhysAddr addr, std::span<const std::uint8_t> src) {
  AccessCost cost;
  // Write-through: memory always updated; each word crosses to memory.
  pm_->write(addr, src);
  cost.mem_words += (src.size() + 3) / 4;
  std::size_t done = 0;
  while (done < src.size()) {
    const PhysAddr a = addr + static_cast<PhysAddr>(done);
    const PhysAddr line_base = a - (a % cfg_.line_bytes);
    const std::uint32_t off = a - line_base;
    const std::uint32_t n = std::min<std::uint32_t>(
        cfg_.line_bytes - off, static_cast<std::uint32_t>(src.size() - done));
    Line& line = lines_[index_of(a)];
    if (line.valid && line.tag == tag_of(a)) {
      ++cost.hits;
      std::copy_n(src.begin() + done, n, line.data.begin() + off);
    }
    done += n;
  }
  return cost;
}

bool DataCache::dma_write(PhysAddr addr, std::span<const std::uint8_t> src) {
  if (!pm_->dma_write(addr, src)) return false;
  // Walk the lines the transfer overlaps.
  const PhysAddr first = addr - (addr % cfg_.line_bytes);
  const PhysAddr end = addr + static_cast<PhysAddr>(src.size());
  for (PhysAddr base = first; base < end; base += cfg_.line_bytes) {
    Line& line = lines_[index_of(base)];
    if (!line.valid || line.tag != tag_of(base)) continue;
    if (cfg_.coherence == DmaCoherence::kUpdate) {
      pm_->read(base, line.data);  // hardware refreshes the cached copy
    } else {
      ++dma_stale_lines_;  // line now holds stale data
    }
  }
  return true;
}

std::size_t DataCache::dma_scatter(std::span<const PhysBuffer> segs,
                                   std::span<const std::uint8_t> src) {
  std::size_t total = 0;
  for (const auto& s : segs) total += s.len;
  if (src.size() < total) {
    throw std::out_of_range("DataCache::dma_scatter: src span too short");
  }
  std::size_t off = 0;
  std::size_t ok = 0;
  for (const auto& s : segs) {
    if (dma_write(s.addr, src.subspan(off, s.len))) ++ok;
    off += s.len;
  }
  return ok;
}

std::uint64_t DataCache::invalidate(PhysAddr addr, std::uint32_t len) {
  const PhysAddr first = addr - (addr % cfg_.line_bytes);
  const PhysAddr end = addr + len;
  for (PhysAddr base = first; base < end; base += cfg_.line_bytes) {
    Line& line = lines_[index_of(base)];
    if (line.valid && line.tag == tag_of(base)) line.valid = false;
  }
  return (len + 3) / 4;  // invalidation cost is per 32-bit word of range
}

void DataCache::invalidate_all() {
  for (auto& line : lines_) line.valid = false;
}

bool DataCache::is_stale(PhysAddr addr, std::uint32_t len) const {
  const PhysAddr first = addr - (addr % cfg_.line_bytes);
  const PhysAddr end = addr + len;
  for (PhysAddr base = first; base < end; base += cfg_.line_bytes) {
    const Line& line = lines_[(base / cfg_.line_bytes) % lines_.size()];
    if (!line.valid || line.tag != base / cfg_.line_bytes / lines_.size()) continue;
    const auto truth = pm_->view(base, cfg_.line_bytes);
    if (!std::equal(line.data.begin(), line.data.end(), truth.begin())) return true;
  }
  return false;
}

}  // namespace osiris::mem
