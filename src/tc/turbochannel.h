// TURBOchannel bus model.
//
// The TURBOchannel is a 32-bit synchronous bus; on the machines in the
// paper it runs at 25 MHz, giving 800 Mbps of raw data bandwidth. A DMA
// transaction costs a fixed per-transaction overhead plus one cycle per
// 32-bit word: 13 cycles of overhead for reads (board reading host memory,
// i.e. the transmit direction) and 8 for writes (receive direction). These
// constants reproduce the paper's §2.5.1 numbers exactly:
//
//   44-byte read:  11/(11+13) * 800 = 367 Mbps     (single-cell transmit)
//   44-byte write: 11/(11+8)  * 800 = 463 Mbps     (single-cell receive)
//   88-byte read:  22/(22+13) * 800 = 503 Mbps     (double-cell transmit)
//   88-byte write: 22/(22+8)  * 800 = 587 Mbps     (double-cell receive)
//
// On the DECstation 5000/200 every memory transaction occupies the bus, so
// CPU main-memory traffic and DMA serialize; the DEC 3000/600's crossbar
// lets them proceed concurrently. That distinction is decided by the host
// CPU model (which either reserves this bus for its memory phases or not);
// this class only arbitrates and costs transactions.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/engine.h"
#include "sim/resource.h"
#include "sim/time.h"

namespace osiris::tc {

struct BusConfig {
  double clock_hz = 25e6;
  std::uint32_t word_bytes = 4;
  std::uint32_t dma_read_overhead_cycles = 13;
  std::uint32_t dma_write_overhead_cycles = 8;
  // Programmed I/O: per-word costs for the host CPU touching option-slot
  // memory (the dual-port RAM). Word reads across the TURBOchannel carry a
  // high penalty (§2.7); writes post through a write buffer.
  std::uint32_t pio_read_cycles = 15;
  std::uint32_t pio_write_cycles = 4;
};

class TurboChannel {
 public:
  TurboChannel(sim::Engine& eng, BusConfig cfg)
      : cfg_(cfg), bus_(eng, "turbochannel") {}

  [[nodiscard]] const BusConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Resource& bus() { return bus_; }

  [[nodiscard]] std::uint32_t words(std::uint32_t bytes) const {
    return (bytes + cfg_.word_bytes - 1) / cfg_.word_bytes;
  }

  [[nodiscard]] sim::Duration cycle_time() const { return sim::cycle(cfg_.clock_hz); }

  /// Pure cost (no arbitration) of a DMA transaction moving `bytes`.
  [[nodiscard]] sim::Duration dma_read_cost(std::uint32_t bytes) const {
    return sim::cycles(cfg_.dma_read_overhead_cycles + words(bytes), cfg_.clock_hz);
  }
  [[nodiscard]] sim::Duration dma_write_cost(std::uint32_t bytes) const {
    return sim::cycles(cfg_.dma_write_overhead_cycles + words(bytes), cfg_.clock_hz);
  }

  /// Reserves the bus for a DMA read of `bytes` starting no earlier than
  /// `from`; returns the completion time.
  sim::Tick dma_read(sim::Tick from, std::uint32_t bytes) {
    dma_bytes_ += bytes;
    ++dma_transactions_;
    return bus_.reserve_at(from, dma_read_cost(bytes));
  }

  sim::Tick dma_write(sim::Tick from, std::uint32_t bytes) {
    dma_bytes_ += bytes;
    ++dma_transactions_;
    return bus_.reserve_at(from, dma_write_cost(bytes));
  }

  /// Cost of `n` PIO word reads / writes by the host CPU.
  [[nodiscard]] sim::Duration pio_read_cost(std::uint32_t n_words = 1) const {
    return sim::cycles(static_cast<double>(cfg_.pio_read_cycles) * n_words, cfg_.clock_hz);
  }
  [[nodiscard]] sim::Duration pio_write_cost(std::uint32_t n_words = 1) const {
    return sim::cycles(static_cast<double>(cfg_.pio_write_cycles) * n_words, cfg_.clock_hz);
  }

  /// Reserves the bus for CPU main-memory traffic of `n_words` (used only
  /// on machines without a crossbar): DMA and CPU memory phases serialize,
  /// which is the §4 contention the paper reports on the 5000/200.
  ///
  /// Modelling note: real bus arbitration interleaves at word granularity,
  /// while this books each memory phase as one block. The aggregate bus
  /// occupancy (what throughput depends on) is identical; the one side
  /// effect — cells briefly backing up behind a block on a live link — is
  /// absorbed by the receive processor's header FIFO depth (see
  /// BoardConfig::rx_fifo_depth).
  sim::Tick cpu_memory(sim::Tick from, std::uint64_t n_words) {
    return bus_.reserve_at(from,
                           sim::cycles(static_cast<double>(n_words), cfg_.clock_hz));
  }

  [[nodiscard]] std::uint64_t dma_bytes() const { return dma_bytes_; }
  [[nodiscard]] std::uint64_t dma_transactions() const { return dma_transactions_; }

 private:
  BusConfig cfg_;
  sim::Resource bus_;
  std::uint64_t dma_bytes_ = 0;
  std::uint64_t dma_transactions_ = 0;
};

}  // namespace osiris::tc
