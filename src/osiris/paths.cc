#include "osiris/paths.h"

#include <stdexcept>
#include <string>

namespace osiris {

atm::Vci PathManager::alloc_vci() {
  // VCIs are abundant; scan past any that happen to be open already.
  for (int guard = 0; guard < (1 << 20); ++guard) {
    const atm::Vci vci = next_vci_++ & atm::kMaxVci;
    if (vci == 0) continue;  // reserve 0
    if (!paths_.contains(vci)) return vci;
  }
  throw std::runtime_error("PathManager: VCI space exhausted");
}

atm::Vci PathManager::open() {
  const atm::Vci vci = alloc_vci();
  tb_->a.map_kernel_vci(vci);
  tb_->b.map_kernel_vci(vci);
  paths_[vci] = PathInfo{false};
  ++total_opened_;
  return vci;
}

atm::Vci PathManager::open_fbuf(fbuf::FbufPool& pool_a,
                                     fbuf::FbufPool& pool_b,
                                     const std::vector<fbuf::DomainId>& domains) {
  const atm::Vci vci = alloc_vci();
  tb_->a.open_fbuf_path(pool_a, vci, domains);
  tb_->b.open_fbuf_path(pool_b, vci, domains);
  paths_[vci] = PathInfo{true};
  ++total_opened_;
  return vci;
}

void PathManager::close(atm::Vci vci) {
  const auto it = paths_.find(vci);
  if (it == paths_.end()) {
    throw std::invalid_argument("PathManager: close of unopened vci " +
                                std::to_string(vci));
  }
  tb_->a.rxp.unmap_vci(vci);
  tb_->b.rxp.unmap_vci(vci);
  paths_.erase(it);
}

}  // namespace osiris
