#include "osiris/audit.h"

#include <cstdint>
#include <sstream>

namespace osiris::obs {

namespace {

void check_eq(std::vector<std::string>& out, const char* what,
              std::uint64_t lhs, std::uint64_t rhs) {
  if (lhs == rhs) return;
  std::ostringstream os;
  os << what << ": " << lhs << " != " << rhs;
  out.push_back(os.str());
}

void check_le(std::vector<std::string>& out, const char* what,
              std::uint64_t lhs, std::uint64_t rhs) {
  if (lhs <= rhs) return;
  std::ostringstream os;
  os << what << ": " << lhs << " > " << rhs;
  out.push_back(os.str());
}

/// One direction of the wire: `src` transmits through its outgoing link to
/// `dst`'s receive processor.
void audit_direction(std::vector<std::string>& out, const char* label,
                     Node& src, Node& dst) {
  std::ostringstream tag;

  // Every cell the SAR loop sealed was submitted to the link: the firmware
  // counts after submit(), so a mismatch means a counting bug, not a fault.
  {
    std::ostringstream what;
    what << label << ": tx cells_sent vs link cells_sent";
    check_eq(out, what.str().c_str(), src.txp.cells_sent(),
             src.out.cells_sent());
  }

  // Wire conservation: a submitted cell is dropped by BER loss, dropped by
  // the receiver's HEC check in the link, or delivered to on_cell() (which
  // counts before any FIFO/demux drop). Generator cells are board-local and
  // excluded from the wire budget.
  {
    std::ostringstream what;
    what << label
         << ": link cells_sent vs lost + hec_dropped + delivered";
    const std::uint64_t delivered =
        dst.rxp.cells_received() - dst.rxp.cells_generated();
    check_eq(out, what.str().c_str(), src.out.cells_sent(),
             src.out.cells_lost() + src.out.cells_hec_dropped() + delivered);
  }

  // The driver can only deliver PDUs the board reassembled (resets can
  // discard completed-but-undelivered PDUs, so <=, not ==).
  {
    std::ostringstream what;
    what << label << ": driver pdus_received vs board pdus_completed";
    check_le(out, what.str().c_str(), dst.driver.pdus_received(),
             dst.rxp.pdus_completed());
  }

  // Descriptor conservation: the driver never retires a transmit
  // descriptor it did not first accept.
  {
    std::ostringstream what;
    what << label << ": tx descriptors retired vs accepted";
    check_le(out, what.str().c_str(), src.driver.tx_descs_retired(),
             src.driver.tx_descs_accepted());
  }
}

}  // namespace

std::vector<std::string> audit(Testbed& tb) {
  std::vector<std::string> out;
  audit_direction(out, "a->b", tb.a, tb.b);
  audit_direction(out, "b->a", tb.b, tb.a);
  return out;
}

}  // namespace osiris::obs
