// Measurement harness reproducing the paper's §4 experiments.
//
// All measurements are taken between test programs "linked into the
// kernel" (the paper's methodology): application-level send/receive costs
// are charged on the host CPU, but no protection-domain crossing occurs
// unless the experiment says so.
#pragma once

#include <cstdint>
#include <vector>

#include "osiris/node.h"
#include "proto/stack.h"
#include "sim/stats.h"

namespace osiris::harness {

struct LatencyResult {
  double rtt_us_mean = 0;
  double rtt_us_min = 0;
  double rtt_us_max = 0;
  std::uint64_t iterations = 0;
};

/// Kernel-to-kernel ping-pong of `msg_bytes` messages over `vci`,
/// initiated by node `a`'s stack. Echo server runs on node `b`.
LatencyResult ping_pong(Testbed& tb, proto::ProtoStack& sa,
                        proto::ProtoStack& sb, std::uint16_t vci,
                        std::uint32_t msg_bytes, int iterations);

struct ThroughputResult {
  double mbps = 0;            // user payload goodput
  std::uint64_t messages = 0;
  double duration_us = 0;     // first-to-last delivery
  std::uint64_t interrupts = 0;
  std::uint64_t pdus = 0;
  double interrupts_per_pdu = 0;
};

/// Builds the on-the-wire fragment PDUs that the protocol stack would
/// produce for one `msg_bytes` UDP message (used to drive the board's
/// fictitious-PDU generator).
std::vector<std::vector<std::uint8_t>> make_udp_fragments(
    std::uint32_t msg_bytes, std::uint32_t ip_mtu, bool udp_checksum);

/// Receive-side throughput in isolation (Figures 2 and 3): the board's
/// receive processor generates messages as fast as the host absorbs them.
ThroughputResult receive_throughput(Node& n, proto::ProtoStack& stack,
                                    std::uint16_t vci, std::uint32_t msg_bytes,
                                    std::uint64_t n_msgs,
                                    const proto::StackConfig& scfg);

/// Transmit-side throughput (Figure 4): sender pumps messages back to
/// back; goodput measured at the receiver.
ThroughputResult transmit_throughput(Testbed& tb, Node& sender,
                                     proto::ProtoStack& s_tx,
                                     proto::ProtoStack& s_rx,
                                     std::uint16_t vci, std::uint32_t msg_bytes,
                                     std::uint64_t n_msgs);

/// Parses a `--threads N` / `--threads=N` flag from a bench or example
/// command line; returns `fallback` when absent or malformed.
int parse_threads(int argc, char** argv, int fallback = 1);

}  // namespace osiris::harness
