// Measurement harness reproducing the paper's §4 experiments.
//
// All measurements are taken between test programs "linked into the
// kernel" (the paper's methodology): application-level send/receive costs
// are charged on the host CPU, but no protection-domain crossing occurs
// unless the experiment says so.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "osiris/node.h"
#include "proto/stack.h"
#include "sim/stats.h"

namespace osiris::harness {

struct LatencyResult {
  double rtt_us_mean = 0;
  double rtt_us_min = 0;
  double rtt_us_max = 0;
  std::uint64_t iterations = 0;
};

/// Kernel-to-kernel ping-pong of `msg_bytes` messages over `vci`,
/// initiated by node `a`'s stack. Echo server runs on node `b`.
LatencyResult ping_pong(Testbed& tb, proto::ProtoStack& sa,
                        proto::ProtoStack& sb, atm::Vci vci,
                        std::uint32_t msg_bytes, int iterations);

struct ThroughputResult {
  double mbps = 0;            // user payload goodput
  std::uint64_t messages = 0;
  double duration_us = 0;     // first-to-last delivery
  std::uint64_t interrupts = 0;
  std::uint64_t pdus = 0;
  double interrupts_per_pdu = 0;
};

/// Builds the on-the-wire fragment PDUs that the protocol stack would
/// produce for one `msg_bytes` UDP message (used to drive the board's
/// fictitious-PDU generator).
std::vector<std::vector<std::uint8_t>> make_udp_fragments(
    std::uint32_t msg_bytes, std::uint32_t ip_mtu, bool udp_checksum);

/// Receive-side throughput in isolation (Figures 2 and 3): the board's
/// receive processor generates messages as fast as the host absorbs them.
ThroughputResult receive_throughput(Node& n, proto::ProtoStack& stack,
                                    atm::Vci vci, std::uint32_t msg_bytes,
                                    std::uint64_t n_msgs,
                                    const proto::StackConfig& scfg);

/// Transmit-side throughput (Figure 4): sender pumps messages back to
/// back; goodput measured at the receiver.
ThroughputResult transmit_throughput(Testbed& tb, Node& sender,
                                     proto::ProtoStack& s_tx,
                                     proto::ProtoStack& s_rx,
                                     atm::Vci vci, std::uint32_t msg_bytes,
                                     std::uint64_t n_msgs);

/// Parses a `--threads N` / `--threads=N` flag from a bench or example
/// command line; returns `fallback` when absent or malformed.
int parse_threads(int argc, char** argv, int fallback = 1);

/// Parses a string-valued `--<flag> V` / `--<flag>=V` option; returns ""
/// when absent. `flag` includes the dashes ("--stats-json").
std::string parse_string_flag(int argc, char** argv, const std::string& flag);

/// Output sinks requested on an example/soak command line:
///   --stats-json=<path>  write a metrics snapshot of both nodes as JSON
///   --trace-out=<path>   write traces + PDU spans as Chrome trace-event JSON
/// Empty paths mean the flag was absent and nothing is written.
struct OutputFlags {
  std::string stats_json;
  std::string trace_out;
};
OutputFlags parse_output_flags(int argc, char** argv);

/// Chaos-mode options on an example/soak command line (DESIGN.md §12):
///   --chaos-seed=<n>       generate schedule <n> and run it through the
///                          chaos runner instead of the normal scenario
///   --chaos-replay=<file>  parse a recorded schedule (or shrink artifact —
///                          the parser ignores the appended postmortem) and
///                          run exactly that
/// Pure flag parsing: executing a schedule is the caller's job (via
/// osiris_chaos), so binaries that never use chaos mode don't link it.
struct ChaosFlags {
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::string replay;
  [[nodiscard]] bool active() const { return seed_set || !replay.empty(); }
};
ChaosFlags parse_chaos_flags(int argc, char** argv);

/// Writes a metrics snapshot covering both testbed nodes (prefixes "a."
/// and "b.", plus any spans' stage histograms) to `path` as JSON. Returns
/// false when the file cannot be opened.
bool write_stats_json(const std::string& path, Testbed& tb,
                      const obs::PduSpans* spans_a = nullptr,
                      const obs::PduSpans* spans_b = nullptr);

/// Writes the nodes' Trace rings and span ledgers to `path` as Chrome
/// trace-event JSON (load in Perfetto / chrome://tracing). Null sources are
/// skipped; returns false when the file cannot be opened.
bool write_trace_json(const std::string& path, const sim::Trace* trace_a,
                      const sim::Trace* trace_b,
                      const obs::PduSpans* spans_a = nullptr,
                      const obs::PduSpans* spans_b = nullptr);

}  // namespace osiris::harness
