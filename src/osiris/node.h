// Top-level facade: a workstation with an OSIRIS board, and a two-node
// testbed wired back-to-back (the paper's measurement setup, §4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "board/rx.h"
#include "board/tx.h"
#include "dpram/dpram.h"
#include "fault/fault.h"
#include "fbuf/fbuf.h"
#include "host/driver.h"
#include "host/interrupts.h"
#include "host/machine.h"
#include "link/link.h"
#include "mem/cache.h"
#include "mem/paging.h"
#include "mem/phys.h"
#include "obs/spans.h"
#include "proto/stack.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "tc/turbochannel.h"

namespace osiris {

struct NodeConfig {
  host::MachineConfig machine;
  board::BoardConfig board;
  link::LinkConfig link;  // this node's outgoing (transmit) link
  host::OsirisDriver::Config driver;
  std::size_t mem_bytes = 64 * 1024 * 1024;
  bool interleave_frames = true;
  std::uint64_t seed = 1;
  sim::Trace* trace = nullptr;  // optional event trace (not owned)
  /// Optional fault-injection plane (not owned): wired into memory DMA,
  /// the dual-port RAM, both board processors, the interrupt controller,
  /// and the driver. Null disables every hook.
  fault::FaultPlane* faults = nullptr;
  /// Optional PDU lifecycle spans (not owned): wired into the driver, both
  /// board processors, and (through the cell stamps) the link. Like the
  /// trace, a spans object is thread-confined — one per node under
  /// multi-threaded runs.
  obs::PduSpans* spans = nullptr;
};

/// One workstation: memory system, TURBOchannel, dual-port RAM, the two
/// board processors, interrupt controller, kernel driver, kernel address
/// space. The kernel channel pair (index 0) is registered with the board
/// in the constructor; the driver's receive pool is queued by attach().
class Node {
 public:
  Node(sim::Engine& eng, NodeConfig cfg);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Maps a VCI to the kernel channel on the receive side: incoming PDUs
  /// on it use the kernel free queue and receive queue.
  void map_kernel_vci(atm::Vci vci);

  /// Binds the receive side of `vci` to a per-path cached fbuf pool
  /// (§3.1): creates the path in `pool` for `domains`, places its
  /// preallocated buffers on a dedicated board free queue (in an unused
  /// dual-port-RAM page — the memory's structure is firmware-defined), and
  /// points the VCI's early-demultiplexing entry at it, falling back to
  /// the kernel's uncached pool when the path pool runs dry. Returns the
  /// fbuf path id.
  int open_fbuf_path(fbuf::FbufPool& pool, atm::Vci vci,
                     std::vector<fbuf::DomainId> domains);

  /// Creates a protocol stack bound to the kernel driver.
  std::unique_ptr<proto::ProtoStack> make_stack(proto::StackConfig cfg);

  /// Robustness plumbing: starts both firmware heartbeats (at period/2,
  /// so the host sees at least one beat per poll) and the driver watchdog
  /// that resets the adaptor when a heartbeat freezes longer than
  /// `deadline`. Bounded by `until` so the event queue always drains.
  void start_watchdog(sim::Duration period, sim::Duration deadline,
                      sim::Tick until);

  sim::Engine& eng;
  NodeConfig cfg;
  mem::PhysicalMemory pm;
  mem::FrameAllocator frames;
  mem::DataCache cache;
  tc::TurboChannel bus;
  dpram::DualPortRam ram;
  host::HostCpu cpu;
  host::InterruptController intc;
  link::StripedLink out;  // transmit direction; connect() points it at a peer
  board::TxProcessor txp;
  board::RxProcessor rxp;
  mem::AddressSpace kernel_space;
  dpram::ChannelLayout kernel_layout;
  host::OsirisDriver driver;
  int kernel_free_id = -1;
  int kernel_recv_idx = -1;

 private:
  std::uint32_t next_fbuf_pair_ = 8;  // dpram pages used for fbuf queues
  int next_fbuf_tag_ = 1;
};

/// Two nodes with their boards linked back-to-back.
///
/// Each node is one partition of an EngineGroup (DESIGN.md §9 and §14):
/// node `a` runs on partition 0, node `b` on partition 1, and the two
/// StripedLinks deliver through cross-partition channels whose lookahead
/// is the link's minimum cell latency. run() executes the asynchronous
/// EOT protocol on `threads` OS threads; dispatch order — and therefore
/// every stat and trace — is identical for any thread count.
class Testbed {
 public:
  Testbed(NodeConfig ca, NodeConfig cb, int threads = 1);

  /// Allocates a fresh VCI and maps it into both nodes' kernel channels
  /// (the x-kernel binds each path to an unused VCI, §3.1).
  atm::Vci open_kernel_path();

  /// Sets the worker-thread count for subsequent run() calls (clamped to
  /// [1, 2]). Rejected when the two nodes share a Trace, FaultPlane or
  /// PduSpans: those sinks are not synchronized across partitions.
  void set_threads(int threads);
  [[nodiscard]] int threads() const { return threads_; }

  /// Runs both partitions to completion; returns the final time.
  sim::Tick run() { return group.run(threads_); }

  /// Simulated time (the partitions agree whenever the testbed is idle).
  [[nodiscard]] sim::Tick now() const { return group.now(); }

  /// Events dispatched, summed over both nodes' engines.
  [[nodiscard]] std::uint64_t dispatched() const {
    return group.stats().dispatched;
  }

  sim::EngineGroup group{2};
  Node a;
  Node b;

 private:
  int threads_ = 1;
  atm::Vci next_vci_ = 100;
};

/// Convenience NodeConfigs for the two machines of the paper.
NodeConfig make_5000_200_config();
NodeConfig make_3000_600_config();

}  // namespace osiris
