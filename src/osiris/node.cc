#include "osiris/node.h"

#include <algorithm>
#include <stdexcept>

namespace osiris {

Node::Node(sim::Engine& engine, NodeConfig c)
    : eng(engine),
      cfg(std::move(c)),
      pm(cfg.mem_bytes),
      frames(cfg.mem_bytes, cfg.interleave_frames, cfg.seed),
      cache(pm, cfg.machine.cache),
      bus(eng, cfg.machine.bus),
      ram(),
      cpu(eng, cfg.machine, bus),
      intc(eng, cfg.machine, cpu),
      out(eng, cfg.link),
      txp(eng, cfg.board, bus, pm, ram, out),
      rxp(eng, cfg.board, bus, cache, ram),
      kernel_space(pm, frames, cfg.machine.name + ".kernel"),
      kernel_layout(dpram::channel_layout(0)),
      driver(eng, cfg.machine, cpu, intc, bus, pm, cache, frames, ram, txp,
             kernel_layout, cfg.driver) {
  txp.set_irq_sink([this](board::Irq irq, int ch) { intc.raise(irq, ch); });
  rxp.set_irq_sink([this](board::Irq irq, int ch) { intc.raise(irq, ch); });
  txp.set_trace(cfg.trace);
  rxp.set_trace(cfg.trace);
  driver.set_trace(cfg.trace);
  if (cfg.spans != nullptr) {
    txp.set_spans(cfg.spans);
    rxp.set_spans(cfg.spans);
    driver.set_spans(cfg.spans, /*tx_channel=*/0);
  }
  driver.bind_rx(&rxp);
  if (cfg.faults != nullptr) {
    pm.set_fault_plane(cfg.faults);
    ram.set_fault_plane(cfg.faults);
    txp.set_fault_plane(cfg.faults);
    rxp.set_fault_plane(cfg.faults);
    intc.set_fault_plane(cfg.faults);
    driver.set_fault_plane(cfg.faults);
  }

  txp.add_queue(0, kernel_layout.tx, /*priority=*/0, nullptr);
  kernel_free_id = rxp.add_free_source(kernel_layout.free, nullptr, 0);
  kernel_recv_idx = rxp.add_recv_channel(kernel_layout.recv, 0);

  driver.attach(0);
}

void Node::map_kernel_vci(atm::Vci vci) {
  rxp.map_vci(vci, kernel_free_id, -1, kernel_recv_idx);
}

int Node::open_fbuf_path(fbuf::FbufPool& pool, atm::Vci vci,
                         std::vector<fbuf::DomainId> domains) {
  if (next_fbuf_pair_ >= dpram::kPagesPerHalf) {
    throw std::runtime_error("open_fbuf_path: out of dual-port RAM pages");
  }
  const int path = pool.create_path(std::move(domains));
  pool.precache(path);  // opening the path maps its pool into the domains
  // Borrow an unused channel pair's free-queue layout for the per-path
  // queue; its buffers are the path's preallocated cached fbufs.
  const dpram::ChannelLayout lay =
      dpram::channel_layout(next_fbuf_pair_++, 64,
                            static_cast<std::uint32_t>(
                                fbuf::FbufPool::Config{}.bufs_per_path + 1));
  const int tag = next_fbuf_tag_++;
  driver.add_free_pool(lay.free, tag, pool.path_pool(path));
  const int free_id = rxp.add_free_source(lay.free, nullptr, 0);
  rxp.map_vci(vci, free_id, kernel_free_id, kernel_recv_idx);
  return path;
}

void Node::start_watchdog(sim::Duration period, sim::Duration deadline,
                          sim::Tick until) {
  txp.start_heartbeat(period / 2, until);
  rxp.start_heartbeat(period / 2, until);
  host::OsirisDriver::WatchdogConfig wd;
  wd.period = period;
  wd.deadline = deadline;
  wd.until = until;
  driver.start_watchdog(wd);
}

std::unique_ptr<proto::ProtoStack> Node::make_stack(proto::StackConfig scfg) {
  auto s = std::make_unique<proto::ProtoStack>(eng, cfg.machine, cpu, cache,
                                               pm, driver, scfg);
  s->attach();
  return s;
}

Testbed::Testbed(NodeConfig ca, NodeConfig cb, int threads)
    : a(group.partition(0), std::move(ca)),
      b(group.partition(1), std::move(cb)) {
  // Each direction of the wire is a conservative channel: nothing submitted
  // on one node can reach the other sooner than one cell time plus the
  // fixed propagation delay, so that is the lookahead bound.
  group.connect(0, 1, a.out.min_latency());
  group.connect(1, 0, b.out.min_latency());
  a.out.set_remote(group, 0, 1);
  b.out.set_remote(group, 1, 0);
  // The sinks run on the *destination* partition, so each touches only its
  // own node's state.
  a.out.set_sink([this](int lane, const atm::Cell& cell) { b.rxp.on_cell(lane, cell); });
  b.out.set_sink([this](int lane, const atm::Cell& cell) { a.rxp.on_cell(lane, cell); });
  set_threads(threads);
}

void Testbed::set_threads(int threads) {
  if (threads > 1) {
    if (a.cfg.trace != nullptr && a.cfg.trace == b.cfg.trace) {
      throw std::logic_error(
          "Testbed: nodes share a Trace; multi-thread runs need one per node");
    }
    if (a.cfg.faults != nullptr && a.cfg.faults == b.cfg.faults) {
      throw std::logic_error(
          "Testbed: nodes share a FaultPlane; multi-thread runs need one per "
          "node");
    }
    if (a.cfg.spans != nullptr && a.cfg.spans == b.cfg.spans) {
      throw std::logic_error(
          "Testbed: nodes share a PduSpans; multi-thread runs need one per "
          "node");
    }
  }
  threads_ = std::clamp(threads, 1, static_cast<int>(group.partitions()));
}

atm::Vci Testbed::open_kernel_path() {
  const atm::Vci vci = next_vci_++;
  a.map_kernel_vci(vci);
  b.map_kernel_vci(vci);
  return vci;
}

NodeConfig make_5000_200_config() {
  NodeConfig c;
  c.machine = host::decstation_5000_200();
  return c;
}

NodeConfig make_3000_600_config() {
  NodeConfig c;
  c.machine = host::dec_3000_600();
  return c;
}

}  // namespace osiris
