// x-kernel path management (§3.1).
//
// "The x-kernel provides a mechanism for establishing a path through the
// protocol graph ... Each path is then bound to an unused VCI by the
// device driver. This means that we treat VCIs as a fairly abundant
// resource; each of the potentially hundreds of paths (connections) on a
// given host is bound to a VCI for the duration of the path."
//
// PathManager owns that binding for a two-node testbed: it allocates VCIs,
// maps them into both receive processors (plain kernel buffering, or a
// per-path fbuf pool for early demultiplexing into pre-mapped buffers),
// and tears them down on close.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fbuf/fbuf.h"
#include "osiris/node.h"

namespace osiris {

class PathManager {
 public:
  explicit PathManager(Testbed& tb, atm::Vci first_vci = 1000)
      : tb_(&tb), next_vci_(first_vci) {}

  /// Opens a bidirectional kernel-buffered path; returns its VCI.
  atm::Vci open();

  /// Opens a path whose receive side (on each node) draws from a per-path
  /// cached fbuf pool spanning `domains`. Returns its VCI.
  atm::Vci open_fbuf(fbuf::FbufPool& pool_a, fbuf::FbufPool& pool_b,
                          const std::vector<fbuf::DomainId>& domains);

  /// Unbinds the VCI on both nodes. Throws if the path is not open.
  void close(atm::Vci vci);

  [[nodiscard]] bool is_open(atm::Vci vci) const {
    return paths_.contains(vci);
  }
  [[nodiscard]] std::size_t open_count() const { return paths_.size(); }
  [[nodiscard]] std::uint64_t total_opened() const { return total_opened_; }

 private:
  struct PathInfo {
    bool fbuf = false;
  };

  atm::Vci alloc_vci();

  Testbed* tb_;
  atm::Vci next_vci_;
  std::map<atm::Vci, PathInfo> paths_;
  std::uint64_t total_opened_ = 0;
};

}  // namespace osiris
