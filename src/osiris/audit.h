// Cross-counter invariant checker (the observability subsystem's sanity
// net): after a run drains, independently-maintained counters on the two
// nodes must agree — every cell the transmit firmware sealed hit the wire,
// every wire cell was delivered or accounted as lost, the driver never
// delivered more PDUs than the board completed. Fault and QoS soaks call
// audit() at the end so a bookkeeping bug (a counter bumped on one side of
// a drop but not the other) fails the test even when throughput looks fine.
#pragma once

#include <string>
#include <vector>

#include "osiris/node.h"

namespace osiris::obs {

/// Checks conservation identities across the testbed after a completed
/// run(). Returns one human-readable string per violated identity; an empty
/// vector means the books balance. Safe on faulty runs: every identity
/// already accounts for loss, corruption and drops through their own
/// counters.
std::vector<std::string> audit(Testbed& tb);

}  // namespace osiris::obs
