#include "osiris/harness.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "atm/checksum.h"
#include "osiris/stats.h"
#include "proto/message.h"

namespace osiris::harness {

LatencyResult ping_pong(Testbed& tb, proto::ProtoStack& sa,
                        proto::ProtoStack& sb, atm::Vci vci,
                        std::uint32_t msg_bytes, int iterations) {
  // One message per direction, reused across iterations (the test program
  // sends the same buffer repeatedly).
  std::vector<std::uint8_t> payload(msg_bytes);
  for (std::uint32_t i = 0; i < msg_bytes; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  proto::Message ma =
      proto::Message::from_payload(tb.a.kernel_space, payload, /*offset=*/0);
  proto::Message mb =
      proto::Message::from_payload(tb.b.kernel_space, payload, /*offset=*/0);

  sim::Summary rtts;
  int remaining = iterations;
  sim::Tick send_started = 0;

  const host::MachineConfig& mca = tb.a.cfg.machine;
  const host::MachineConfig& mcb = tb.b.cfg.machine;

  sb.set_sink([&](sim::Tick at, std::uint16_t v, std::vector<std::uint8_t>&&) {
    // Echo server: consume and reply.
    sim::Tick t = tb.b.cpu.exec(at, host::Work{mcb.app_recv, 0});
    t = tb.b.cpu.exec(t, host::Work{mcb.app_send, 0});
    sb.send(t, v, mb);
  });
  sa.set_sink([&](sim::Tick at, std::uint16_t v, std::vector<std::uint8_t>&&) {
    const sim::Tick t = tb.a.cpu.exec(at, host::Work{mca.app_recv, 0});
    rtts.add(sim::to_us(t - send_started));
    if (--remaining > 0) {
      send_started = t;
      const sim::Tick t2 = tb.a.cpu.exec(t, host::Work{mca.app_send, 0});
      sa.send(t2, v, ma);
    }
  });

  send_started = tb.now();
  const sim::Tick t0 = tb.a.cpu.exec(tb.now(), host::Work{mca.app_send, 0});
  sa.send(t0, vci, ma);
  tb.run();

  LatencyResult r;
  r.rtt_us_mean = rtts.mean();
  r.rtt_us_min = rtts.min();
  r.rtt_us_max = rtts.max();
  r.iterations = rtts.count();
  return r;
}

std::vector<std::vector<std::uint8_t>> make_udp_fragments(
    std::uint32_t msg_bytes, std::uint32_t ip_mtu, bool udp_checksum) {
  if (ip_mtu <= proto::kIpHeader) throw std::invalid_argument("MTU too small");
  std::vector<std::uint8_t> payload(msg_bytes);
  for (std::uint32_t i = 0; i < msg_bytes; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 3);
  }
  // UDP packet = 8-byte header + payload.
  std::vector<std::uint8_t> pkt(proto::kUdpHeader + msg_bytes, 0);
  std::copy(payload.begin(), payload.end(), pkt.begin() + proto::kUdpHeader);
  if (udp_checksum) {
    const std::uint16_t ck = atm::InternetChecksum::of(payload);
    pkt[4] = static_cast<std::uint8_t>(ck >> 8);
    pkt[5] = static_cast<std::uint8_t>(ck);
  }

  const std::uint32_t frag_data = ip_mtu - proto::kIpHeader;
  const auto total = static_cast<std::uint32_t>(pkt.size());
  std::vector<std::vector<std::uint8_t>> out;
  for (std::uint32_t off = 0; off < total; off += frag_data) {
    const std::uint32_t n = std::min(frag_data, total - off);
    std::vector<std::uint8_t> frag(proto::kIpHeader + n);
    const std::uint32_t flen = n + proto::kIpHeader;
    frag[0] = static_cast<std::uint8_t>(flen >> 24);
    frag[1] = static_cast<std::uint8_t>(flen >> 16);
    frag[2] = static_cast<std::uint8_t>(flen >> 8);
    frag[3] = static_cast<std::uint8_t>(flen);
    frag[4] = 0;  // ip id (safe to reuse: messages are sequential)
    frag[5] = 1;
    frag[6] = static_cast<std::uint8_t>(off >> 24);
    frag[7] = static_cast<std::uint8_t>(off >> 16);
    frag[8] = static_cast<std::uint8_t>(off >> 8);
    frag[9] = static_cast<std::uint8_t>(off);
    frag[10] = (off + n < total) ? 1 : 0;
    frag[11] = 17;
    std::copy(pkt.begin() + off, pkt.begin() + off + n,
              frag.begin() + proto::kIpHeader);
    out.push_back(std::move(frag));
  }
  return out;
}

ThroughputResult receive_throughput(Node& n, proto::ProtoStack& stack,
                                    atm::Vci vci, std::uint32_t msg_bytes,
                                    std::uint64_t n_msgs,
                                    const proto::StackConfig& scfg) {
  n.map_kernel_vci(vci);
  const auto frags =
      make_udp_fragments(msg_bytes, scfg.ip_mtu, scfg.udp_checksum);

  std::uint64_t delivered = 0;
  sim::Tick first = 0, last = 0;
  const host::MachineConfig& mc = n.cfg.machine;
  stack.set_sink([&](sim::Tick at, std::uint16_t, std::vector<std::uint8_t>&& d) {
    if (d.size() != msg_bytes) throw std::logic_error("receive_throughput: size");
    const sim::Tick t = n.cpu.exec(at, host::Work{mc.app_recv, 0});
    if (delivered == 0) first = t;
    last = t;
    ++delivered;
  });

  n.intc.reset_stats();
  n.rxp.start_generator_multi(vci, frags, n_msgs, 0);
  n.eng.run();

  ThroughputResult r;
  r.messages = delivered;
  r.interrupts = n.intc.raised();
  r.pdus = n.driver.pdus_received();
  r.interrupts_per_pdu =
      r.pdus == 0 ? 0.0 : static_cast<double>(r.interrupts) / static_cast<double>(r.pdus);
  if (delivered >= 2) {
    r.duration_us = sim::to_us(last - first);
    r.mbps = sim::mbps(static_cast<std::uint64_t>(msg_bytes) * (delivered - 1),
                       last - first);
  }
  return r;
}

ThroughputResult transmit_throughput(Testbed& tb, Node& sender,
                                     proto::ProtoStack& s_tx,
                                     proto::ProtoStack& s_rx,
                                     atm::Vci vci, std::uint32_t msg_bytes,
                                     std::uint64_t n_msgs) {
  std::vector<std::uint8_t> payload(msg_bytes);
  for (std::uint32_t i = 0; i < msg_bytes; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 17 + 1);
  }
  proto::Message m =
      proto::Message::from_payload(sender.kernel_space, payload, /*offset=*/0);

  std::uint64_t delivered = 0;
  sim::Tick first = 0, last = 0;
  s_rx.set_sink([&](sim::Tick at, std::uint16_t, std::vector<std::uint8_t>&& d) {
    if (d.size() != msg_bytes) throw std::logic_error("transmit_throughput: size");
    if (delivered == 0) first = at;
    last = at;
    ++delivered;
  });

  // The sending test program issues the next send as soon as the previous
  // one returns; a send that fills the transmit queue blocks the program
  // until the driver's half-empty resume fires (§2.1.2).
  const host::MachineConfig& mc = sender.cfg.machine;
  auto pump = std::make_shared<std::function<void(sim::Tick, std::uint64_t)>>();
  // The continuation captures itself only weakly: a strong self-capture
  // would be a shared_ptr cycle, and the local `pump` already outlives the
  // run() below.
  std::weak_ptr<std::function<void(sim::Tick, std::uint64_t)>> wp = pump;
  *pump = [&tb, &sender, &s_tx, &mc, &m, vci, n_msgs, wp](sim::Tick t,
                                                          std::uint64_t i) {
    while (i < n_msgs) {
      t = sender.cpu.exec(t, host::Work{mc.app_send, 0});
      t = s_tx.send(t, vci, m);
      ++i;
      if (sender.driver.tx_suspended()) {
        const std::uint64_t next = i;
        sender.driver.set_tx_resume([wp, next](sim::Tick rt) {
          if (const auto p = wp.lock()) (*p)(rt, next);
        });
        return;
      }
    }
  };
  (*pump)(tb.now(), 0);
  tb.run();

  ThroughputResult r;
  r.messages = delivered;
  if (delivered >= 2) {
    r.duration_us = sim::to_us(last - first);
    r.mbps = sim::mbps(static_cast<std::uint64_t>(msg_bytes) * (delivered - 1),
                       last - first);
  }
  return r;
}

std::string parse_string_flag(int argc, char** argv, const std::string& flag) {
  const std::string eq = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(eq, 0) == 0) return arg.substr(eq.size());
  }
  return "";
}

OutputFlags parse_output_flags(int argc, char** argv) {
  OutputFlags f;
  f.stats_json = parse_string_flag(argc, argv, "--stats-json");
  f.trace_out = parse_string_flag(argc, argv, "--trace-out");
  return f;
}

ChaosFlags parse_chaos_flags(int argc, char** argv) {
  ChaosFlags f;
  const std::string seed = parse_string_flag(argc, argv, "--chaos-seed");
  if (!seed.empty()) {
    f.seed = std::strtoull(seed.c_str(), nullptr, 10);
    f.seed_set = true;
  }
  f.replay = parse_string_flag(argc, argv, "--chaos-replay");
  return f;
}

bool write_stats_json(const std::string& path, Testbed& tb,
                      const obs::PduSpans* spans_a,
                      const obs::PduSpans* spans_b) {
  obs::Registry reg;
  register_metrics(reg, tb.a, "a.");
  register_metrics(reg, tb.b, "b.");
  if (spans_a != nullptr) spans_a->register_into(reg, "a.span.");
  if (spans_b != nullptr) spans_b->register_into(reg, "b.span.");
  std::ofstream os(path);
  if (!os) return false;
  os << reg.snapshot().to_json() << "\n";
  return os.good();
}

bool write_trace_json(const std::string& path, const sim::Trace* trace_a,
                      const sim::Trace* trace_b, const obs::PduSpans* spans_a,
                      const obs::PduSpans* spans_b) {
  std::vector<obs::TraceSource> srcs;
  srcs.push_back(obs::TraceSource{"a", trace_a, spans_a});
  srcs.push_back(obs::TraceSource{"b", trace_b, spans_b});
  return obs::write_chrome_trace_file(path, srcs);
}

int parse_threads(int argc, char** argv, int fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string val;
    if (arg == "--threads" && i + 1 < argc) {
      val = argv[i + 1];
    } else if (arg.rfind("--threads=", 0) == 0) {
      val = arg.substr(10);
    } else {
      continue;
    }
    try {
      return std::stoi(val);
    } catch (const std::exception&) {
      return fallback;
    }
  }
  return fallback;
}

}  // namespace osiris::harness
