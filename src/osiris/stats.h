// Consolidated per-node statistics snapshots: one struct gathering the
// counters scattered across the board, driver, interrupt controller, bus
// and cache — for examples, benches, and post-run assertions.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "osiris/node.h"

namespace osiris {

struct NodeStats {
  std::string machine;

  // Transmit half.
  std::uint64_t pdus_sent = 0;
  std::uint64_t cells_sent = 0;
  std::uint64_t tx_dma_ops = 0;
  std::uint64_t tx_dma_splits = 0;
  std::uint64_t tx_suspensions = 0;
  std::uint64_t tx_auth_violations = 0;

  // Receive half.
  std::uint64_t cells_received = 0;
  std::uint64_t cells_generated = 0;  // board-local generator cells (subset of received)
  std::uint64_t cells_bad_header = 0;
  std::uint64_t cells_fifo_dropped = 0;
  std::uint64_t rx_dma_ops = 0;
  double combine_fraction = 0;
  std::uint64_t pdus_completed = 0;
  std::uint64_t pdus_dropped_nobuf = 0;
  std::uint64_t pdus_dropped_recvfull = 0;
  std::uint64_t rx_auth_violations = 0;

  // QoS / overload management (DESIGN.md §10).
  std::uint64_t pdus_dropped_quota = 0;  // per-VCI reassembly quota hits
  std::uint64_t pdus_evicted = 0;        // partial PDUs evicted under pressure
  std::uint64_t backpressure_irqs = 0;   // rx overload interrupts raised
  std::uint64_t rate_deferrals = 0;      // tx cells delayed by rate limits
  std::uint64_t wedge_skips = 0;         // tx queues skipped while wedged
  std::uint64_t quarantine_drops = 0;    // cells dropped on quarantined VCIs
  std::uint64_t dead_channel_drops = 0;  // cells for unmapped/dead channels

  // Host.
  std::uint64_t interrupts = 0;
  std::uint64_t driver_pdus_received = 0;
  std::uint64_t stale_partial_pdus = 0;
  std::uint64_t wired_frames = 0;
  double bus_utilization = 0;
  double cpu_utilization = 0;
  std::uint64_t dpram_host_accesses = 0;
  std::uint64_t dpram_board_accesses = 0;
  std::uint64_t cache_stale_reads = 0;
  std::uint64_t cache_dma_stale_lines = 0;

  // Faults observed and recovery actions taken.
  std::uint64_t board_stalls = 0;        // tx + rx firmware wedges
  std::uint64_t cells_sar_dropped = 0;   // cells lost inside the SAR loop
  std::uint64_t dma_errors = 0;          // failed transfers (tx + rx)
  std::uint64_t bad_chains = 0;          // tx chains rejected as corrupt
  std::uint64_t bad_descriptors = 0;     // rx descriptors rejected as corrupt
  std::uint64_t dpram_stale_reads = 0;
  std::uint64_t dpram_corrupted_words = 0;
  std::uint64_t irqs_lost = 0;
  std::uint64_t spurious_irqs = 0;
  std::uint64_t watchdog_polls = 0;      // rx bursts recovered by polling
  std::uint64_t watchdog_resets = 0;
  std::uint64_t generation = 0;          // adaptor reset epoch

  /// Per-PDU dual-port-RAM access rates (the paper's §2.1 goal 1 metric).
  [[nodiscard]] double host_accesses_per_pdu() const {
    const std::uint64_t pdus = pdus_sent + driver_pdus_received;
    return pdus == 0 ? 0.0
                     : static_cast<double>(dpram_host_accesses) /
                           static_cast<double>(pdus);
  }

  [[nodiscard]] double interrupts_per_pdu() const {
    const std::uint64_t pdus = pdus_completed;
    return pdus == 0 ? 0.0
                     : static_cast<double>(interrupts) /
                           static_cast<double>(pdus);
  }
};

/// Captures a snapshot of every counter on the node.
NodeStats snapshot(Node& n);

/// Multi-line human-readable rendering.
std::string format_stats(const NodeStats& s);

/// Registers every NodeStats counter (tx/rx/host/fault/QoS) with `r` as
/// pull-model gauges named "<prefix>tx.pdus_sent", "<prefix>rx.cells_received"
/// and so on, so one Registry::snapshot() renders the whole node. The node
/// must outlive the registry (the gauges read its counters live). Use a
/// distinct prefix per node ("a.", "b.") when one registry covers a testbed.
void register_metrics(obs::Registry& r, Node& n, const std::string& prefix = "");

}  // namespace osiris
