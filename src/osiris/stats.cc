#include "osiris/stats.h"

#include <sstream>

namespace osiris {

NodeStats snapshot(Node& n) {
  NodeStats s;
  s.machine = n.cfg.machine.name;

  s.pdus_sent = n.txp.pdus_sent();
  s.cells_sent = n.txp.cells_sent();
  s.tx_dma_ops = n.txp.dma_ops();
  s.tx_dma_splits = n.txp.dma_splits();
  s.tx_suspensions = n.driver.tx_suspensions();
  s.tx_auth_violations = n.txp.auth_violations();

  s.cells_received = n.rxp.cells_received();
  s.cells_bad_header = n.rxp.cells_bad_header();
  s.cells_fifo_dropped = n.rxp.cells_fifo_dropped();
  s.rx_dma_ops = n.rxp.dma_ops();
  s.combine_fraction = n.rxp.combine_fraction();
  s.pdus_completed = n.rxp.pdus_completed();
  s.pdus_dropped_nobuf = n.rxp.pdus_dropped_nobuf();
  s.pdus_dropped_recvfull = n.rxp.pdus_dropped_recvfull();
  s.rx_auth_violations = n.rxp.auth_violations();

  s.interrupts = n.intc.raised();
  s.driver_pdus_received = n.driver.pdus_received();
  s.stale_partial_pdus = n.driver.stale_partial_pdus();
  s.wired_frames = n.driver.wiring().wired_frames();
  s.bus_utilization = n.bus.bus().utilization();
  s.cpu_utilization = n.cpu.resource().utilization();
  s.dpram_host_accesses = n.ram.host_accesses();
  s.dpram_board_accesses = n.ram.board_accesses();
  s.cache_stale_reads = n.cache.stale_reads();
  s.cache_dma_stale_lines = n.cache.dma_stale_lines();

  s.board_stalls = n.txp.stalls() + n.rxp.stalls();
  s.cells_sar_dropped = n.rxp.cells_sar_dropped();
  s.dma_errors = n.txp.dma_errors() + n.rxp.dma_errors();
  s.bad_chains = n.txp.bad_chains();
  s.bad_descriptors = n.driver.bad_descriptors();
  s.dpram_stale_reads = n.ram.stale_reads();
  s.dpram_corrupted_words = n.ram.corrupted_words();
  s.irqs_lost = n.intc.lost();
  s.spurious_irqs = n.driver.spurious_irqs();
  s.watchdog_polls = n.driver.watchdog_polls();
  s.watchdog_resets = n.driver.watchdog_resets();
  s.generation = n.driver.generation();
  return s;
}

std::string format_stats(const NodeStats& s) {
  std::ostringstream os;
  os << s.machine << "\n";
  os << "  tx: " << s.pdus_sent << " PDUs, " << s.cells_sent << " cells, "
     << s.tx_dma_ops << " DMA reads (" << s.tx_dma_splits
     << " boundary splits), " << s.tx_suspensions << " queue-full suspensions\n";
  os << "  rx: " << s.cells_received << " cells in, " << s.pdus_completed
     << " PDUs reassembled via " << s.rx_dma_ops << " DMA writes ("
     << static_cast<int>(s.combine_fraction * 100) << "% double-cell)\n";
  if (s.cells_bad_header + s.cells_fifo_dropped + s.pdus_dropped_nobuf +
          s.pdus_dropped_recvfull >
      0) {
    os << "  drops: " << s.cells_bad_header << " bad-header cells, "
       << s.cells_fifo_dropped << " fifo cells, " << s.pdus_dropped_nobuf
       << " PDUs (no buffer), " << s.pdus_dropped_recvfull
       << " PDUs (recv queue full)\n";
  }
  os << "  host: " << s.interrupts << " interrupts ("
     << s.interrupts_per_pdu() << "/PDU), " << s.driver_pdus_received
     << " PDUs delivered, " << s.dpram_host_accesses
     << " dual-port RAM accesses (" << s.host_accesses_per_pdu()
     << "/PDU)\n";
  os << "  bus util " << s.bus_utilization << ", cpu util "
     << s.cpu_utilization << ", wired frames " << s.wired_frames << "\n";
  if (s.cache_dma_stale_lines > 0) {
    os << "  cache: " << s.cache_dma_stale_lines << " lines made stale by DMA, "
       << s.cache_stale_reads << " stale reads observed\n";
  }
  if (s.board_stalls + s.cells_sar_dropped + s.dma_errors + s.bad_chains +
          s.bad_descriptors + s.dpram_stale_reads + s.dpram_corrupted_words +
          s.irqs_lost + s.spurious_irqs + s.watchdog_polls +
          s.watchdog_resets >
      0) {
    os << "  faults: " << s.board_stalls << " stalls, " << s.cells_sar_dropped
       << " SAR drops, " << s.dma_errors << " DMA errors, " << s.bad_chains
       << " bad chains, " << s.bad_descriptors << " bad descriptors, "
       << s.dpram_corrupted_words << " corrupted words, "
       << s.dpram_stale_reads << " stale RAM reads, " << s.irqs_lost
       << " lost irqs, " << s.spurious_irqs << " spurious irqs\n";
    os << "  recovery: " << s.watchdog_polls << " watchdog polls, "
       << s.watchdog_resets << " adaptor resets (generation " << s.generation
       << ")\n";
  }
  return os.str();
}

}  // namespace osiris
