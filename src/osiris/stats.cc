#include "osiris/stats.h"

#include <functional>
#include <sstream>
#include <utility>

namespace osiris {

NodeStats snapshot(Node& n) {
  NodeStats s;
  s.machine = n.cfg.machine.name;

  s.pdus_sent = n.txp.pdus_sent();
  s.cells_sent = n.txp.cells_sent();
  s.tx_dma_ops = n.txp.dma_ops();
  s.tx_dma_splits = n.txp.dma_splits();
  s.tx_suspensions = n.driver.tx_suspensions();
  s.tx_auth_violations = n.txp.auth_violations();

  s.cells_received = n.rxp.cells_received();
  s.cells_generated = n.rxp.cells_generated();
  s.cells_bad_header = n.rxp.cells_bad_header();
  s.cells_fifo_dropped = n.rxp.cells_fifo_dropped();
  s.rx_dma_ops = n.rxp.dma_ops();
  s.combine_fraction = n.rxp.combine_fraction();
  s.pdus_completed = n.rxp.pdus_completed();
  s.pdus_dropped_nobuf = n.rxp.pdus_dropped_nobuf();
  s.pdus_dropped_recvfull = n.rxp.pdus_dropped_recvfull();
  s.rx_auth_violations = n.rxp.auth_violations();

  s.pdus_dropped_quota = n.rxp.pdus_dropped_quota();
  s.pdus_evicted = n.rxp.pdus_evicted();
  s.backpressure_irqs = n.rxp.backpressure_irqs();
  s.rate_deferrals = n.txp.rate_deferrals();
  s.wedge_skips = n.txp.wedge_skips();
  s.quarantine_drops = n.rxp.quarantine_drops();
  s.dead_channel_drops = n.rxp.dead_channel_drops();

  s.interrupts = n.intc.raised();
  s.driver_pdus_received = n.driver.pdus_received();
  s.stale_partial_pdus = n.driver.stale_partial_pdus();
  s.wired_frames = n.driver.wiring().wired_frames();
  s.bus_utilization = n.bus.bus().utilization();
  s.cpu_utilization = n.cpu.resource().utilization();
  s.dpram_host_accesses = n.ram.host_accesses();
  s.dpram_board_accesses = n.ram.board_accesses();
  s.cache_stale_reads = n.cache.stale_reads();
  s.cache_dma_stale_lines = n.cache.dma_stale_lines();

  s.board_stalls = n.txp.stalls() + n.rxp.stalls();
  s.cells_sar_dropped = n.rxp.cells_sar_dropped();
  s.dma_errors = n.txp.dma_errors() + n.rxp.dma_errors();
  s.bad_chains = n.txp.bad_chains();
  s.bad_descriptors = n.driver.bad_descriptors();
  s.dpram_stale_reads = n.ram.stale_reads();
  s.dpram_corrupted_words = n.ram.corrupted_words();
  s.irqs_lost = n.intc.lost();
  s.spurious_irqs = n.driver.spurious_irqs();
  s.watchdog_polls = n.driver.watchdog_polls();
  s.watchdog_resets = n.driver.watchdog_resets();
  s.generation = n.driver.generation();
  return s;
}

std::string format_stats(const NodeStats& s) {
  std::ostringstream os;
  os << s.machine << "\n";
  os << "  tx: " << s.pdus_sent << " PDUs, " << s.cells_sent << " cells, "
     << s.tx_dma_ops << " DMA reads (" << s.tx_dma_splits
     << " boundary splits), " << s.tx_suspensions << " queue-full suspensions\n";
  os << "  rx: " << s.cells_received << " cells in, " << s.pdus_completed
     << " PDUs reassembled via " << s.rx_dma_ops << " DMA writes ("
     << static_cast<int>(s.combine_fraction * 100) << "% double-cell)\n";
  if (s.cells_bad_header + s.cells_fifo_dropped + s.pdus_dropped_nobuf +
          s.pdus_dropped_recvfull >
      0) {
    os << "  drops: " << s.cells_bad_header << " bad-header cells, "
       << s.cells_fifo_dropped << " fifo cells, " << s.pdus_dropped_nobuf
       << " PDUs (no buffer), " << s.pdus_dropped_recvfull
       << " PDUs (recv queue full)\n";
  }
  os << "  host: " << s.interrupts << " interrupts ("
     << s.interrupts_per_pdu() << "/PDU), " << s.driver_pdus_received
     << " PDUs delivered, " << s.dpram_host_accesses
     << " dual-port RAM accesses (" << s.host_accesses_per_pdu()
     << "/PDU)\n";
  os << "  bus util " << s.bus_utilization << ", cpu util "
     << s.cpu_utilization << ", wired frames " << s.wired_frames << "\n";
  if (s.cache_dma_stale_lines > 0) {
    os << "  cache: " << s.cache_dma_stale_lines << " lines made stale by DMA, "
       << s.cache_stale_reads << " stale reads observed\n";
  }
  if (s.pdus_dropped_quota + s.pdus_evicted + s.backpressure_irqs +
          s.rate_deferrals + s.wedge_skips + s.quarantine_drops +
          s.dead_channel_drops >
      0) {
    os << "  qos: " << s.pdus_dropped_quota << " quota drops, "
       << s.pdus_evicted << " evictions, " << s.backpressure_irqs
       << " backpressure irqs, " << s.rate_deferrals << " rate deferrals, "
       << s.wedge_skips << " wedge skips, " << s.quarantine_drops
       << " quarantine drops, " << s.dead_channel_drops
       << " dead-channel drops\n";
  }
  if (s.board_stalls + s.cells_sar_dropped + s.dma_errors + s.bad_chains +
          s.bad_descriptors + s.dpram_stale_reads + s.dpram_corrupted_words +
          s.irqs_lost + s.spurious_irqs + s.watchdog_polls +
          s.watchdog_resets >
      0) {
    os << "  faults: " << s.board_stalls << " stalls, " << s.cells_sar_dropped
       << " SAR drops, " << s.dma_errors << " DMA errors, " << s.bad_chains
       << " bad chains, " << s.bad_descriptors << " bad descriptors, "
       << s.dpram_corrupted_words << " corrupted words, "
       << s.dpram_stale_reads << " stale RAM reads, " << s.irqs_lost
       << " lost irqs, " << s.spurious_irqs << " spurious irqs\n";
    os << "  recovery: " << s.watchdog_polls << " watchdog polls, "
       << s.watchdog_resets << " adaptor resets (generation " << s.generation
       << ")\n";
  }
  return os.str();
}

void register_metrics(obs::Registry& r, Node& n, const std::string& prefix) {
  Node* np = &n;
  // Pull-model gauges: each reads the live counter at snapshot() time, so
  // registration happens once and the hot paths are untouched.
  auto add = [&r, &prefix](const char* name, std::function<std::uint64_t()> f) {
    r.gauge(prefix + name,
            [f = std::move(f)] { return static_cast<double>(f()); });
  };

  add("tx.pdus_sent", [np] { return np->txp.pdus_sent(); });
  add("tx.cells_sent", [np] { return np->txp.cells_sent(); });
  add("tx.dma_ops", [np] { return np->txp.dma_ops(); });
  add("tx.dma_splits", [np] { return np->txp.dma_splits(); });
  add("tx.suspensions", [np] { return np->driver.tx_suspensions(); });
  add("tx.auth_violations", [np] { return np->txp.auth_violations(); });

  add("rx.cells_received", [np] { return np->rxp.cells_received(); });
  add("rx.cells_generated", [np] { return np->rxp.cells_generated(); });
  add("rx.cells_bad_header", [np] { return np->rxp.cells_bad_header(); });
  add("rx.cells_fifo_dropped", [np] { return np->rxp.cells_fifo_dropped(); });
  add("rx.dma_ops", [np] { return np->rxp.dma_ops(); });
  add("rx.pdus_completed", [np] { return np->rxp.pdus_completed(); });
  add("rx.pdus_dropped_nobuf", [np] { return np->rxp.pdus_dropped_nobuf(); });
  add("rx.pdus_dropped_recvfull",
      [np] { return np->rxp.pdus_dropped_recvfull(); });
  add("rx.auth_violations", [np] { return np->rxp.auth_violations(); });

  add("qos.pdus_dropped_quota", [np] { return np->rxp.pdus_dropped_quota(); });
  add("qos.pdus_evicted", [np] { return np->rxp.pdus_evicted(); });
  add("qos.backpressure_irqs", [np] { return np->rxp.backpressure_irqs(); });
  add("qos.rate_deferrals", [np] { return np->txp.rate_deferrals(); });
  add("qos.wedge_skips", [np] { return np->txp.wedge_skips(); });
  add("qos.quarantine_drops", [np] { return np->rxp.quarantine_drops(); });
  add("qos.dead_channel_drops", [np] { return np->rxp.dead_channel_drops(); });

  // Early-demultiplexing flow table (per-VCI state on the Rx fast path).
  add("flow.occupancy", [np] { return np->rxp.flow_occupancy(); });
  add("flow.capacity", [np] { return np->rxp.flow_capacity(); });
  add("flow.lookups", [np] { return np->rxp.flow_stats().lookups; });
  add("flow.probed_buckets",
      [np] { return np->rxp.flow_stats().probed_buckets; });
  add("flow.max_probe", [np] { return np->rxp.flow_stats().max_probe; });
  add("flow.rehashes", [np] { return np->rxp.flow_stats().rehashes; });
  add("flow.migrated_buckets",
      [np] { return np->rxp.flow_stats().migrated_buckets; });
  add("flow.overflow_peak",
      [np] { return np->rxp.flow_stats().overflow_peak; });

  add("host.interrupts", [np] { return np->intc.raised(); });
  add("host.pdus_received", [np] { return np->driver.pdus_received(); });
  add("host.stale_partial_pdus",
      [np] { return np->driver.stale_partial_pdus(); });
  add("host.wired_frames", [np] { return np->driver.wiring().wired_frames(); });
  add("host.dpram_host_accesses", [np] { return np->ram.host_accesses(); });
  add("host.dpram_board_accesses", [np] { return np->ram.board_accesses(); });
  add("host.cache_stale_reads", [np] { return np->cache.stale_reads(); });

  add("fault.board_stalls", [np] { return np->txp.stalls() + np->rxp.stalls(); });
  add("fault.cells_sar_dropped", [np] { return np->rxp.cells_sar_dropped(); });
  add("fault.dma_errors",
      [np] { return np->txp.dma_errors() + np->rxp.dma_errors(); });
  add("fault.bad_chains", [np] { return np->txp.bad_chains(); });
  add("fault.bad_descriptors", [np] { return np->driver.bad_descriptors(); });
  add("fault.dpram_stale_reads", [np] { return np->ram.stale_reads(); });
  add("fault.dpram_corrupted_words",
      [np] { return np->ram.corrupted_words(); });
  add("fault.irqs_lost", [np] { return np->intc.lost(); });
  add("fault.spurious_irqs", [np] { return np->driver.spurious_irqs(); });
  add("fault.watchdog_polls", [np] { return np->driver.watchdog_polls(); });
  add("fault.watchdog_resets", [np] { return np->driver.watchdog_resets(); });
  add("fault.generation", [np] { return np->driver.generation(); });

  r.gauge(prefix + "host.bus_utilization",
          [np] { return np->bus.bus().utilization(); });
  r.gauge(prefix + "host.cpu_utilization",
          [np] { return np->cpu.resource().utilization(); });
  r.gauge(prefix + "rx.combine_fraction",
          [np] { return np->rxp.combine_fraction(); });

  // Per-point fault-plane activity. The lifetime cells are stable
  // addresses that survive arm()/disarm() cycles, so a chaos schedule's
  // full activity shows up in --stats-json and the trend dashboard
  // without parsing FaultPlane::summary() text.
  if (n.cfg.faults != nullptr) {
    const fault::FaultPlane* fp = n.cfg.faults;
    for (int i = 0; i < static_cast<int>(fault::Point::kCount); ++i) {
      const auto p = static_cast<fault::Point>(i);
      const std::string base = prefix + "fault.point." + fault::point_name(p);
      r.counter(base + ".consulted", fp->lifetime_consulted_cell(p));
      r.counter(base + ".fired", fp->lifetime_fired_cell(p));
    }
  }
}

}  // namespace osiris
