file(REMOVE_RECURSE
  "CMakeFiles/osiris_adc.dir/adc.cc.o"
  "CMakeFiles/osiris_adc.dir/adc.cc.o.d"
  "libosiris_adc.a"
  "libosiris_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
