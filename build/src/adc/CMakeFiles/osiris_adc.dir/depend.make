# Empty dependencies file for osiris_adc.
# This may be replaced when dependencies are built.
