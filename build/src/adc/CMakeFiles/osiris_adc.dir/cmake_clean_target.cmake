file(REMOVE_RECURSE
  "libosiris_adc.a"
)
