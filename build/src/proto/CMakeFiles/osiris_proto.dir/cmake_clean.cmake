file(REMOVE_RECURSE
  "CMakeFiles/osiris_proto.dir/message.cc.o"
  "CMakeFiles/osiris_proto.dir/message.cc.o.d"
  "CMakeFiles/osiris_proto.dir/rpc.cc.o"
  "CMakeFiles/osiris_proto.dir/rpc.cc.o.d"
  "CMakeFiles/osiris_proto.dir/stack.cc.o"
  "CMakeFiles/osiris_proto.dir/stack.cc.o.d"
  "libosiris_proto.a"
  "libosiris_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
