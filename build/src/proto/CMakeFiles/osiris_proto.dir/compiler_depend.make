# Empty compiler generated dependencies file for osiris_proto.
# This may be replaced when dependencies are built.
