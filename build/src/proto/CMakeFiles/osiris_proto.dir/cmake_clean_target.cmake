file(REMOVE_RECURSE
  "libosiris_proto.a"
)
