# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("mem")
subdirs("atm")
subdirs("tc")
subdirs("dpram")
subdirs("link")
subdirs("board")
subdirs("host")
subdirs("proto")
subdirs("fbuf")
subdirs("adc")
subdirs("osiris")
