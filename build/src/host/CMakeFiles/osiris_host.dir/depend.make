# Empty dependencies file for osiris_host.
# This may be replaced when dependencies are built.
