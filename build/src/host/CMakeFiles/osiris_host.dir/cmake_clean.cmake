file(REMOVE_RECURSE
  "CMakeFiles/osiris_host.dir/driver.cc.o"
  "CMakeFiles/osiris_host.dir/driver.cc.o.d"
  "CMakeFiles/osiris_host.dir/machine.cc.o"
  "CMakeFiles/osiris_host.dir/machine.cc.o.d"
  "libosiris_host.a"
  "libosiris_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
