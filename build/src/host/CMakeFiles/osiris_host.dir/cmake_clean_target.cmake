file(REMOVE_RECURSE
  "libosiris_host.a"
)
