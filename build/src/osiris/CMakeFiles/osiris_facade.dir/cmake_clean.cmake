file(REMOVE_RECURSE
  "CMakeFiles/osiris_facade.dir/harness.cc.o"
  "CMakeFiles/osiris_facade.dir/harness.cc.o.d"
  "CMakeFiles/osiris_facade.dir/node.cc.o"
  "CMakeFiles/osiris_facade.dir/node.cc.o.d"
  "CMakeFiles/osiris_facade.dir/paths.cc.o"
  "CMakeFiles/osiris_facade.dir/paths.cc.o.d"
  "CMakeFiles/osiris_facade.dir/stats.cc.o"
  "CMakeFiles/osiris_facade.dir/stats.cc.o.d"
  "libosiris_facade.a"
  "libosiris_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
