# Empty compiler generated dependencies file for osiris_facade.
# This may be replaced when dependencies are built.
