file(REMOVE_RECURSE
  "libosiris_facade.a"
)
