file(REMOVE_RECURSE
  "CMakeFiles/osiris_link.dir/link.cc.o"
  "CMakeFiles/osiris_link.dir/link.cc.o.d"
  "libosiris_link.a"
  "libosiris_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
