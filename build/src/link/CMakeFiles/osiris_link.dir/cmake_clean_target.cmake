file(REMOVE_RECURSE
  "libosiris_link.a"
)
