# Empty dependencies file for osiris_link.
# This may be replaced when dependencies are built.
