# Empty dependencies file for osiris_board.
# This may be replaced when dependencies are built.
