file(REMOVE_RECURSE
  "libosiris_board.a"
)
