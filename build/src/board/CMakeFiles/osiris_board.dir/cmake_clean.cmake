file(REMOVE_RECURSE
  "CMakeFiles/osiris_board.dir/rx.cc.o"
  "CMakeFiles/osiris_board.dir/rx.cc.o.d"
  "CMakeFiles/osiris_board.dir/tx.cc.o"
  "CMakeFiles/osiris_board.dir/tx.cc.o.d"
  "libosiris_board.a"
  "libosiris_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
