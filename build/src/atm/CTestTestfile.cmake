# CMake generated Testfile for 
# Source directory: /root/repo/src/atm
# Build directory: /root/repo/build/src/atm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
