
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atm/cell.cc" "src/atm/CMakeFiles/osiris_atm.dir/cell.cc.o" "gcc" "src/atm/CMakeFiles/osiris_atm.dir/cell.cc.o.d"
  "/root/repo/src/atm/checksum.cc" "src/atm/CMakeFiles/osiris_atm.dir/checksum.cc.o" "gcc" "src/atm/CMakeFiles/osiris_atm.dir/checksum.cc.o.d"
  "/root/repo/src/atm/reassembly.cc" "src/atm/CMakeFiles/osiris_atm.dir/reassembly.cc.o" "gcc" "src/atm/CMakeFiles/osiris_atm.dir/reassembly.cc.o.d"
  "/root/repo/src/atm/sar.cc" "src/atm/CMakeFiles/osiris_atm.dir/sar.cc.o" "gcc" "src/atm/CMakeFiles/osiris_atm.dir/sar.cc.o.d"
  "/root/repo/src/atm/wire.cc" "src/atm/CMakeFiles/osiris_atm.dir/wire.cc.o" "gcc" "src/atm/CMakeFiles/osiris_atm.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/osiris_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
