file(REMOVE_RECURSE
  "libosiris_atm.a"
)
