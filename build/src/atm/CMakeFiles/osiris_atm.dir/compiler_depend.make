# Empty compiler generated dependencies file for osiris_atm.
# This may be replaced when dependencies are built.
