file(REMOVE_RECURSE
  "CMakeFiles/osiris_atm.dir/cell.cc.o"
  "CMakeFiles/osiris_atm.dir/cell.cc.o.d"
  "CMakeFiles/osiris_atm.dir/checksum.cc.o"
  "CMakeFiles/osiris_atm.dir/checksum.cc.o.d"
  "CMakeFiles/osiris_atm.dir/reassembly.cc.o"
  "CMakeFiles/osiris_atm.dir/reassembly.cc.o.d"
  "CMakeFiles/osiris_atm.dir/sar.cc.o"
  "CMakeFiles/osiris_atm.dir/sar.cc.o.d"
  "CMakeFiles/osiris_atm.dir/wire.cc.o"
  "CMakeFiles/osiris_atm.dir/wire.cc.o.d"
  "libosiris_atm.a"
  "libosiris_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
