file(REMOVE_RECURSE
  "CMakeFiles/osiris_dpram.dir/dpram.cc.o"
  "CMakeFiles/osiris_dpram.dir/dpram.cc.o.d"
  "CMakeFiles/osiris_dpram.dir/lockq.cc.o"
  "CMakeFiles/osiris_dpram.dir/lockq.cc.o.d"
  "CMakeFiles/osiris_dpram.dir/queue.cc.o"
  "CMakeFiles/osiris_dpram.dir/queue.cc.o.d"
  "libosiris_dpram.a"
  "libosiris_dpram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_dpram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
