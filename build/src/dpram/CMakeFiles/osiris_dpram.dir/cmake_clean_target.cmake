file(REMOVE_RECURSE
  "libosiris_dpram.a"
)
