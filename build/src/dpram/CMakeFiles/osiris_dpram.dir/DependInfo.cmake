
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpram/dpram.cc" "src/dpram/CMakeFiles/osiris_dpram.dir/dpram.cc.o" "gcc" "src/dpram/CMakeFiles/osiris_dpram.dir/dpram.cc.o.d"
  "/root/repo/src/dpram/lockq.cc" "src/dpram/CMakeFiles/osiris_dpram.dir/lockq.cc.o" "gcc" "src/dpram/CMakeFiles/osiris_dpram.dir/lockq.cc.o.d"
  "/root/repo/src/dpram/queue.cc" "src/dpram/CMakeFiles/osiris_dpram.dir/queue.cc.o" "gcc" "src/dpram/CMakeFiles/osiris_dpram.dir/queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/osiris_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
