# Empty dependencies file for osiris_dpram.
# This may be replaced when dependencies are built.
