# CMake generated Testfile for 
# Source directory: /root/repo/src/dpram
# Build directory: /root/repo/build/src/dpram
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
