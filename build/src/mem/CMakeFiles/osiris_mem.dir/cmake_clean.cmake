file(REMOVE_RECURSE
  "CMakeFiles/osiris_mem.dir/cache.cc.o"
  "CMakeFiles/osiris_mem.dir/cache.cc.o.d"
  "CMakeFiles/osiris_mem.dir/paging.cc.o"
  "CMakeFiles/osiris_mem.dir/paging.cc.o.d"
  "CMakeFiles/osiris_mem.dir/phys.cc.o"
  "CMakeFiles/osiris_mem.dir/phys.cc.o.d"
  "CMakeFiles/osiris_mem.dir/wiring.cc.o"
  "CMakeFiles/osiris_mem.dir/wiring.cc.o.d"
  "libosiris_mem.a"
  "libosiris_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
