# Empty compiler generated dependencies file for osiris_mem.
# This may be replaced when dependencies are built.
