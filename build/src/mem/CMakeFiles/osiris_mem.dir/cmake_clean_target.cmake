file(REMOVE_RECURSE
  "libosiris_mem.a"
)
