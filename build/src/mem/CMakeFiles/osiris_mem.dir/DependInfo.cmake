
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/osiris_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/osiris_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/paging.cc" "src/mem/CMakeFiles/osiris_mem.dir/paging.cc.o" "gcc" "src/mem/CMakeFiles/osiris_mem.dir/paging.cc.o.d"
  "/root/repo/src/mem/phys.cc" "src/mem/CMakeFiles/osiris_mem.dir/phys.cc.o" "gcc" "src/mem/CMakeFiles/osiris_mem.dir/phys.cc.o.d"
  "/root/repo/src/mem/wiring.cc" "src/mem/CMakeFiles/osiris_mem.dir/wiring.cc.o" "gcc" "src/mem/CMakeFiles/osiris_mem.dir/wiring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/osiris_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
