# CMake generated Testfile for 
# Source directory: /root/repo/src/fbuf
# Build directory: /root/repo/build/src/fbuf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
