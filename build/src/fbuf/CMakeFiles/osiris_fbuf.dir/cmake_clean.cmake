file(REMOVE_RECURSE
  "CMakeFiles/osiris_fbuf.dir/fbuf.cc.o"
  "CMakeFiles/osiris_fbuf.dir/fbuf.cc.o.d"
  "libosiris_fbuf.a"
  "libosiris_fbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_fbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
