file(REMOVE_RECURSE
  "libosiris_fbuf.a"
)
