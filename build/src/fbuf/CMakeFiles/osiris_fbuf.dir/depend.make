# Empty dependencies file for osiris_fbuf.
# This may be replaced when dependencies are built.
