# Empty compiler generated dependencies file for osiris_sim.
# This may be replaced when dependencies are built.
