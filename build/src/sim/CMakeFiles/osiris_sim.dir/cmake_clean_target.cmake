file(REMOVE_RECURSE
  "libosiris_sim.a"
)
