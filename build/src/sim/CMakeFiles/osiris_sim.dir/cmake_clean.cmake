file(REMOVE_RECURSE
  "CMakeFiles/osiris_sim.dir/engine.cc.o"
  "CMakeFiles/osiris_sim.dir/engine.cc.o.d"
  "CMakeFiles/osiris_sim.dir/rng.cc.o"
  "CMakeFiles/osiris_sim.dir/rng.cc.o.d"
  "libosiris_sim.a"
  "libosiris_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
