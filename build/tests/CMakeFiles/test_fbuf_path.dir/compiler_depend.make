# Empty compiler generated dependencies file for test_fbuf_path.
# This may be replaced when dependencies are built.
