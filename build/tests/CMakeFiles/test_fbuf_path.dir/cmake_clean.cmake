file(REMOVE_RECURSE
  "CMakeFiles/test_fbuf_path.dir/test_fbuf_path.cc.o"
  "CMakeFiles/test_fbuf_path.dir/test_fbuf_path.cc.o.d"
  "test_fbuf_path"
  "test_fbuf_path.pdb"
  "test_fbuf_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fbuf_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
