# Empty compiler generated dependencies file for test_dpram.
# This may be replaced when dependencies are built.
