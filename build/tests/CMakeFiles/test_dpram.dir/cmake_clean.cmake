file(REMOVE_RECURSE
  "CMakeFiles/test_dpram.dir/test_dpram.cc.o"
  "CMakeFiles/test_dpram.dir/test_dpram.cc.o.d"
  "test_dpram"
  "test_dpram.pdb"
  "test_dpram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
