# Empty dependencies file for test_e2e_matrix.
# This may be replaced when dependencies are built.
