file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_matrix.dir/test_e2e_matrix.cc.o"
  "CMakeFiles/test_e2e_matrix.dir/test_e2e_matrix.cc.o.d"
  "test_e2e_matrix"
  "test_e2e_matrix.pdb"
  "test_e2e_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
