# Empty compiler generated dependencies file for test_adc.
# This may be replaced when dependencies are built.
