file(REMOVE_RECURSE
  "CMakeFiles/test_adc.dir/test_adc.cc.o"
  "CMakeFiles/test_adc.dir/test_adc.cc.o.d"
  "test_adc"
  "test_adc.pdb"
  "test_adc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
