file(REMOVE_RECURSE
  "CMakeFiles/test_stack2.dir/test_stack2.cc.o"
  "CMakeFiles/test_stack2.dir/test_stack2.cc.o.d"
  "test_stack2"
  "test_stack2.pdb"
  "test_stack2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
