# Empty dependencies file for test_stack2.
# This may be replaced when dependencies are built.
