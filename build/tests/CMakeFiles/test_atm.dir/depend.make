# Empty dependencies file for test_atm.
# This may be replaced when dependencies are built.
