file(REMOVE_RECURSE
  "CMakeFiles/test_atm.dir/test_atm.cc.o"
  "CMakeFiles/test_atm.dir/test_atm.cc.o.d"
  "test_atm"
  "test_atm.pdb"
  "test_atm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
