file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_dma.dir/test_fixed_dma.cc.o"
  "CMakeFiles/test_fixed_dma.dir/test_fixed_dma.cc.o.d"
  "test_fixed_dma"
  "test_fixed_dma.pdb"
  "test_fixed_dma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
