# Empty compiler generated dependencies file for test_fixed_dma.
# This may be replaced when dependencies are built.
