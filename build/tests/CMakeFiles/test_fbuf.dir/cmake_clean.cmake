file(REMOVE_RECURSE
  "CMakeFiles/test_fbuf.dir/test_fbuf.cc.o"
  "CMakeFiles/test_fbuf.dir/test_fbuf.cc.o.d"
  "test_fbuf"
  "test_fbuf.pdb"
  "test_fbuf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
