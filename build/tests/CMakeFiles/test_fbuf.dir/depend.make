# Empty dependencies file for test_fbuf.
# This may be replaced when dependencies are built.
