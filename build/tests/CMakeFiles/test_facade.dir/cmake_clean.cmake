file(REMOVE_RECURSE
  "CMakeFiles/test_facade.dir/test_facade.cc.o"
  "CMakeFiles/test_facade.dir/test_facade.cc.o.d"
  "test_facade"
  "test_facade.pdb"
  "test_facade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
