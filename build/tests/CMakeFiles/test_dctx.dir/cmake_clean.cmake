file(REMOVE_RECURSE
  "CMakeFiles/test_dctx.dir/test_dctx.cc.o"
  "CMakeFiles/test_dctx.dir/test_dctx.cc.o.d"
  "test_dctx"
  "test_dctx.pdb"
  "test_dctx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dctx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
