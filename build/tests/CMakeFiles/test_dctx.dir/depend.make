# Empty dependencies file for test_dctx.
# This may be replaced when dependencies are built.
