# Empty dependencies file for test_adc2.
# This may be replaced when dependencies are built.
