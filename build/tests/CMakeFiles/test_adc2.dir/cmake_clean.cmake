file(REMOVE_RECURSE
  "CMakeFiles/test_adc2.dir/test_adc2.cc.o"
  "CMakeFiles/test_adc2.dir/test_adc2.cc.o.d"
  "test_adc2"
  "test_adc2.pdb"
  "test_adc2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adc2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
