# Empty dependencies file for test_tc.
# This may be replaced when dependencies are built.
