file(REMOVE_RECURSE
  "CMakeFiles/test_tc.dir/test_tc.cc.o"
  "CMakeFiles/test_tc.dir/test_tc.cc.o.d"
  "test_tc"
  "test_tc.pdb"
  "test_tc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
