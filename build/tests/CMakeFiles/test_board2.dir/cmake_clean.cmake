file(REMOVE_RECURSE
  "CMakeFiles/test_board2.dir/test_board2.cc.o"
  "CMakeFiles/test_board2.dir/test_board2.cc.o.d"
  "test_board2"
  "test_board2.pdb"
  "test_board2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_board2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
