# Empty dependencies file for test_board2.
# This may be replaced when dependencies are built.
