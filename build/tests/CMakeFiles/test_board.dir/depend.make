# Empty dependencies file for test_board.
# This may be replaced when dependencies are built.
