file(REMOVE_RECURSE
  "CMakeFiles/test_board.dir/test_board.cc.o"
  "CMakeFiles/test_board.dir/test_board.cc.o.d"
  "test_board"
  "test_board.pdb"
  "test_board[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
