# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_atm[1]_include.cmake")
include("/root/repo/build/tests/test_reassembly[1]_include.cmake")
include("/root/repo/build/tests/test_dpram[1]_include.cmake")
include("/root/repo/build/tests/test_link[1]_include.cmake")
include("/root/repo/build/tests/test_board[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_fbuf[1]_include.cmake")
include("/root/repo/build/tests/test_adc[1]_include.cmake")
include("/root/repo/build/tests/test_endtoend[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_tc[1]_include.cmake")
include("/root/repo/build/tests/test_fixed_dma[1]_include.cmake")
include("/root/repo/build/tests/test_errors[1]_include.cmake")
include("/root/repo/build/tests/test_fbuf_path[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_dctx[1]_include.cmake")
include("/root/repo/build/tests/test_e2e_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_facade[1]_include.cmake")
include("/root/repo/build/tests/test_board2[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_stack2[1]_include.cmake")
include("/root/repo/build/tests/test_adc2[1]_include.cmake")
include("/root/repo/build/tests/test_soak[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
