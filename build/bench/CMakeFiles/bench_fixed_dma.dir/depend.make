# Empty dependencies file for bench_fixed_dma.
# This may be replaced when dependencies are built.
