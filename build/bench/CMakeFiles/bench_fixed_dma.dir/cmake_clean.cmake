file(REMOVE_RECURSE
  "CMakeFiles/bench_fixed_dma.dir/bench_fixed_dma.cc.o"
  "CMakeFiles/bench_fixed_dma.dir/bench_fixed_dma.cc.o.d"
  "bench_fixed_dma"
  "bench_fixed_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fixed_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
