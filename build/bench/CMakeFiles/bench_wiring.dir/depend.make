# Empty dependencies file for bench_wiring.
# This may be replaced when dependencies are built.
