file(REMOVE_RECURSE
  "CMakeFiles/bench_wiring.dir/bench_wiring.cc.o"
  "CMakeFiles/bench_wiring.dir/bench_wiring.cc.o.d"
  "bench_wiring"
  "bench_wiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
