# Empty dependencies file for bench_lockfree.
# This may be replaced when dependencies are built.
