file(REMOVE_RECURSE
  "CMakeFiles/bench_lockfree.dir/bench_lockfree.cc.o"
  "CMakeFiles/bench_lockfree.dir/bench_lockfree.cc.o.d"
  "bench_lockfree"
  "bench_lockfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lockfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
