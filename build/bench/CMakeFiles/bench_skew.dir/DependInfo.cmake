
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_skew.cc" "bench/CMakeFiles/bench_skew.dir/bench_skew.cc.o" "gcc" "bench/CMakeFiles/bench_skew.dir/bench_skew.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/osiris/CMakeFiles/osiris_facade.dir/DependInfo.cmake"
  "/root/repo/build/src/adc/CMakeFiles/osiris_adc.dir/DependInfo.cmake"
  "/root/repo/build/src/fbuf/CMakeFiles/osiris_fbuf.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/osiris_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/osiris_host.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/osiris_board.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/osiris_link.dir/DependInfo.cmake"
  "/root/repo/build/src/dpram/CMakeFiles/osiris_dpram.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/osiris_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/osiris_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osiris_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
