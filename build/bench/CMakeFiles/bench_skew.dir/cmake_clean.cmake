file(REMOVE_RECURSE
  "CMakeFiles/bench_skew.dir/bench_skew.cc.o"
  "CMakeFiles/bench_skew.dir/bench_skew.cc.o.d"
  "bench_skew"
  "bench_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
