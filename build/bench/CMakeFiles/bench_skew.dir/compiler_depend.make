# Empty compiler generated dependencies file for bench_skew.
# This may be replaced when dependencies are built.
