file(REMOVE_RECURSE
  "CMakeFiles/bench_dma_length.dir/bench_dma_length.cc.o"
  "CMakeFiles/bench_dma_length.dir/bench_dma_length.cc.o.d"
  "bench_dma_length"
  "bench_dma_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dma_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
