# Empty dependencies file for bench_dma_length.
# This may be replaced when dependencies are built.
