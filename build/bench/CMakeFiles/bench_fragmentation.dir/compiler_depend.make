# Empty compiler generated dependencies file for bench_fragmentation.
# This may be replaced when dependencies are built.
