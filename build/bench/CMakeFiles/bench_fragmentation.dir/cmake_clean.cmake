file(REMOVE_RECURSE
  "CMakeFiles/bench_fragmentation.dir/bench_fragmentation.cc.o"
  "CMakeFiles/bench_fragmentation.dir/bench_fragmentation.cc.o.d"
  "bench_fragmentation"
  "bench_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
