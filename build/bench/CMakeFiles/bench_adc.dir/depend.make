# Empty dependencies file for bench_adc.
# This may be replaced when dependencies are built.
