file(REMOVE_RECURSE
  "CMakeFiles/bench_adc.dir/bench_adc.cc.o"
  "CMakeFiles/bench_adc.dir/bench_adc.cc.o.d"
  "bench_adc"
  "bench_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
