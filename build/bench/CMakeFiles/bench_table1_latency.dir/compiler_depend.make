# Empty compiler generated dependencies file for bench_table1_latency.
# This may be replaced when dependencies are built.
