# Empty compiler generated dependencies file for bench_dma_vs_pio.
# This may be replaced when dependencies are built.
