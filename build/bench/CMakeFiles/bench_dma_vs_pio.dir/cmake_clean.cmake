file(REMOVE_RECURSE
  "CMakeFiles/bench_dma_vs_pio.dir/bench_dma_vs_pio.cc.o"
  "CMakeFiles/bench_dma_vs_pio.dir/bench_dma_vs_pio.cc.o.d"
  "bench_dma_vs_pio"
  "bench_dma_vs_pio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dma_vs_pio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
