# Empty compiler generated dependencies file for bench_interrupts.
# This may be replaced when dependencies are built.
