file(REMOVE_RECURSE
  "CMakeFiles/bench_interrupts.dir/bench_interrupts.cc.o"
  "CMakeFiles/bench_interrupts.dir/bench_interrupts.cc.o.d"
  "bench_interrupts"
  "bench_interrupts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
