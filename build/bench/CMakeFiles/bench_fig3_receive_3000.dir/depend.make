# Empty dependencies file for bench_fig3_receive_3000.
# This may be replaced when dependencies are built.
