file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_receive_3000.dir/bench_fig3_receive_3000.cc.o"
  "CMakeFiles/bench_fig3_receive_3000.dir/bench_fig3_receive_3000.cc.o.d"
  "bench_fig3_receive_3000"
  "bench_fig3_receive_3000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_receive_3000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
