file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_transmit.dir/bench_fig4_transmit.cc.o"
  "CMakeFiles/bench_fig4_transmit.dir/bench_fig4_transmit.cc.o.d"
  "bench_fig4_transmit"
  "bench_fig4_transmit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_transmit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
