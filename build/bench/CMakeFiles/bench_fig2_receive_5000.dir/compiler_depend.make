# Empty compiler generated dependencies file for bench_fig2_receive_5000.
# This may be replaced when dependencies are built.
