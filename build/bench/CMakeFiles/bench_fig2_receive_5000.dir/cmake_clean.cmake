file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_receive_5000.dir/bench_fig2_receive_5000.cc.o"
  "CMakeFiles/bench_fig2_receive_5000.dir/bench_fig2_receive_5000.cc.o.d"
  "bench_fig2_receive_5000"
  "bench_fig2_receive_5000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_receive_5000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
