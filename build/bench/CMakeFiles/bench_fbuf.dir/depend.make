# Empty dependencies file for bench_fbuf.
# This may be replaced when dependencies are built.
