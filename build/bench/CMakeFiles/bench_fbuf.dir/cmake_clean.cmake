file(REMOVE_RECURSE
  "CMakeFiles/bench_fbuf.dir/bench_fbuf.cc.o"
  "CMakeFiles/bench_fbuf.dir/bench_fbuf.cc.o.d"
  "bench_fbuf"
  "bench_fbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
