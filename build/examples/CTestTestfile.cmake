# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;10;osiris_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_striping_skew "/root/repo/build/examples/striping_skew")
set_tests_properties(example_striping_skew PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;osiris_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kernel_bypass "/root/repo/build/examples/kernel_bypass")
set_tests_properties(example_kernel_bypass PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;osiris_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_priority_overload "/root/repo/build/examples/priority_overload")
set_tests_properties(example_priority_overload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;osiris_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fbuf_paths "/root/repo/build/examples/fbuf_paths")
set_tests_properties(example_fbuf_paths PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;osiris_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rpc_over_adc "/root/repo/build/examples/rpc_over_adc")
set_tests_properties(example_rpc_over_adc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;osiris_example;/root/repo/examples/CMakeLists.txt;0;")
