file(REMOVE_RECURSE
  "CMakeFiles/fbuf_paths.dir/fbuf_paths.cc.o"
  "CMakeFiles/fbuf_paths.dir/fbuf_paths.cc.o.d"
  "fbuf_paths"
  "fbuf_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbuf_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
