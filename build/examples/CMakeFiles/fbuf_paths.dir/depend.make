# Empty dependencies file for fbuf_paths.
# This may be replaced when dependencies are built.
