# Empty dependencies file for kernel_bypass.
# This may be replaced when dependencies are built.
