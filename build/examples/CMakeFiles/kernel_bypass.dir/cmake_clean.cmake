file(REMOVE_RECURSE
  "CMakeFiles/kernel_bypass.dir/kernel_bypass.cc.o"
  "CMakeFiles/kernel_bypass.dir/kernel_bypass.cc.o.d"
  "kernel_bypass"
  "kernel_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
