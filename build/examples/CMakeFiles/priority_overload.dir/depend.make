# Empty dependencies file for priority_overload.
# This may be replaced when dependencies are built.
