file(REMOVE_RECURSE
  "CMakeFiles/priority_overload.dir/priority_overload.cc.o"
  "CMakeFiles/priority_overload.dir/priority_overload.cc.o.d"
  "priority_overload"
  "priority_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
