file(REMOVE_RECURSE
  "CMakeFiles/striping_skew.dir/striping_skew.cc.o"
  "CMakeFiles/striping_skew.dir/striping_skew.cc.o.d"
  "striping_skew"
  "striping_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striping_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
