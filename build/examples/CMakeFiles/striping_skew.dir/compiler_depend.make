# Empty compiler generated dependencies file for striping_skew.
# This may be replaced when dependencies are built.
