# Empty dependencies file for rpc_over_adc.
# This may be replaced when dependencies are built.
