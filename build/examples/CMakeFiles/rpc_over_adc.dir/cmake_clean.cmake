file(REMOVE_RECURSE
  "CMakeFiles/rpc_over_adc.dir/rpc_over_adc.cc.o"
  "CMakeFiles/rpc_over_adc.dir/rpc_over_adc.cc.o.d"
  "rpc_over_adc"
  "rpc_over_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_over_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
